// Slot-band sharding for the admission pipeline.
//
// Both primal-dual schedulers touch only the request's execution window:
// decide() reads lambda/usage cells of slots [arrival, end) (across all
// cloudlets) and writes cells of the same window on the cloudlets it
// selects. Two requests whose windows are disjoint therefore read and
// write disjoint state, and their decisions commute *bit-exactly* —
// deciding them in either order (or concurrently) produces the same
// duals, the same usage, and the same outcomes as any sequential order.
//
// A ShardPlan partitions the horizon into `shards` contiguous slot bands;
// a request maps to the contiguous band range its window covers. Two
// requests can only conflict when their band ranges intersect (band
// disjointness implies window disjointness — the converse is not true,
// so the plan may conservatively serialize requests that would in fact
// commute; it never parallelizes requests that conflict).
//
// build_waves() turns a batch (in stream order) into a wave schedule:
// each wave holds batch indices with pairwise-disjoint band ranges, and
// same-band requests keep their relative order across waves. Executing
// waves in order with a barrier between them is therefore bit-identical
// to executing the batch sequentially — the property the serve layer's
// chaos gate checks at every thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "workload/request.hpp"

namespace vnfr::serve {

class ShardPlan {
  public:
    /// Partitions [0, horizon) into min(shards, horizon) contiguous bands
    /// of near-equal width. Throws std::invalid_argument for shards == 0
    /// or horizon <= 0.
    ShardPlan(std::size_t shards, TimeSlot horizon);

    [[nodiscard]] std::size_t shard_count() const { return shards_; }
    [[nodiscard]] TimeSlot horizon() const { return horizon_; }

    /// Band owning slot t (t in [0, horizon)).
    [[nodiscard]] std::size_t band_of(TimeSlot t) const;

    /// Contiguous band range [first, last] touched by the request's
    /// window [arrival, end()).
    struct BandRange {
        std::size_t first{0};
        std::size_t last{0};

        [[nodiscard]] bool overlaps(const BandRange& other) const {
            return first <= other.last && other.first <= last;
        }
    };
    [[nodiscard]] BandRange bands(const workload::Request& request) const;

  private:
    std::size_t shards_;
    TimeSlot horizon_;
};

/// Conflict-ordered wave schedule over `batch` (stream order). Wave w is
/// a set of indices into `batch` whose band ranges are pairwise disjoint;
/// for any two conflicting requests the earlier index lands in a strictly
/// earlier wave. Indices within a wave are ascending. With one shard
/// every request conflicts with every other and the schedule degenerates
/// to one index per wave — exactly sequential execution.
[[nodiscard]] std::vector<std::vector<std::size_t>> build_waves(
    const ShardPlan& plan, const std::vector<workload::Request>& batch);

}  // namespace vnfr::serve
