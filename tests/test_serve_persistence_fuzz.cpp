// Fuzz-style robustness tests for the serve layer's durable formats.
// Every mutated input must be rejected with a CorruptStateError that
// names the file and a byte offset — never UB, never a silent
// mis-parse. Run under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "serve/snapshot.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve {
namespace {

ControllerSnapshot sample_snapshot() {
    ControllerSnapshot snap;
    snap.scheme = 1;
    snap.config_digest = 0x1122334455667788ULL;
    snap.cloudlets = 2;
    snap.horizon = 3;
    snap.wal_seq = 4;
    snap.metrics = {5, 2, 3, 1, 17.5, 2.25};
    snap.lambda = {{0.0, 0.5, 1.0}, {2.0, 0.0, 0.25}};
    snap.usage = {1.0, 0.0, 2.0, 0.0, 3.0, 1.0};
    snap.covered_watermark = 6;
    snap.covered_sparse = {8, 11};
    snap.admitted = {
        {1, 101, 10.0, {{0, 2}}},
        {3, 103, 7.5, {{1, 1}, {0, 3}}},
    };
    return snap;
}

workload::Request sample_request(std::int64_t id) {
    workload::Request r;
    r.id = RequestId{id};
    r.vnf = VnfTypeId{0};
    r.requirement = 0.9;
    r.arrival = 1;
    r.duration = 2;
    r.payment = 5.0 + static_cast<double>(id);
    r.source = NodeId{0};
    return r;
}

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
}

/// Writes a WAL with `records` decision/shed records and returns its bytes.
std::string build_wal_bytes(const std::string& path, std::size_t records) {
    std::remove(path.c_str());
    WalWriter w = WalWriter::create(path, 7, 0xABCDEF01ULL);
    for (std::size_t i = 0; i < records; ++i) {
        WalRecord rec;
        rec.kind = (i % 3 == 2) ? WalRecordKind::kShed : WalRecordKind::kDecision;
        rec.seq = i;
        rec.request = sample_request(static_cast<std::int64_t>(i));
        if (rec.kind == WalRecordKind::kDecision) {
            rec.admitted = (i % 2 == 0);
            rec.reject_reason =
                rec.admitted ? core::RejectReason::kNone : core::RejectReason::kPricedOut;
            if (rec.admitted) rec.sites.push_back(core::Site{CloudletId{0}, 1});
        }
        w.append(rec);
    }
    w.close();
    return read_file(path);
}

// --- Snapshot fuzzing -------------------------------------------------

TEST(SnapshotFuzz, RoundTripIsExact) {
    const ControllerSnapshot snap = sample_snapshot();
    const std::string bytes = encode_snapshot(snap);
    const ControllerSnapshot back = decode_snapshot(bytes, "roundtrip");
    EXPECT_EQ(back.config_digest, snap.config_digest);
    EXPECT_EQ(back.metrics.processed, snap.metrics.processed);
    EXPECT_EQ(back.metrics.revenue, snap.metrics.revenue);
    EXPECT_EQ(back.lambda, snap.lambda);
    EXPECT_EQ(back.usage, snap.usage);
    EXPECT_EQ(back.covered_sparse, snap.covered_sparse);
    ASSERT_EQ(back.admitted.size(), snap.admitted.size());
    EXPECT_EQ(back.admitted[1].sites, snap.admitted[1].sites);
}

TEST(SnapshotFuzz, EveryTruncationLengthIsRejected) {
    const std::string bytes = encode_snapshot(sample_snapshot());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(decode_snapshot(bytes.substr(0, len), "truncated"),
                      CorruptStateError)
            << "prefix of " << len << " bytes parsed as valid";
    }
}

TEST(SnapshotFuzz, EverySingleByteFlipIsRejected) {
    const std::string bytes = encode_snapshot(sample_snapshot());
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        std::string mutated = bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
        // The whole-file CRC makes any one-byte flip detectable.
        EXPECT_THROW(decode_snapshot(mutated, "flipped"), CorruptStateError)
            << "flip at byte " << pos << " parsed as valid";
    }
}

TEST(SnapshotFuzz, RandomGarbageIsRejected) {
    std::mt19937_64 rng(20260806);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> length(0, 512);
    for (int trial = 0; trial < 200; ++trial) {
        std::string junk(length(rng), '\0');
        for (char& c : junk) c = static_cast<char>(byte(rng));
        EXPECT_THROW(decode_snapshot(junk, "garbage"), CorruptStateError);
    }
}

TEST(SnapshotFuzz, FutureVersionIsRejectedWithOffset) {
    ControllerSnapshot snap = sample_snapshot();
    std::string bytes = encode_snapshot(snap);
    // Version is the u32 right after the 8-byte magic. Bump it and
    // re-seal the trailer CRC so only the version is at fault.
    bytes[8] = static_cast<char>(kSnapshotVersion + 1);
    WireWriter crc;
    crc.put_u32(crc32(std::string_view(bytes).substr(0, bytes.size() - 4)));
    bytes.replace(bytes.size() - 4, 4, crc.bytes());
    try {
        (void)decode_snapshot(bytes, "versioned");
        FAIL() << "expected CorruptStateError";
    } catch (const CorruptStateError& e) {
        EXPECT_EQ(e.offset(), 8u);
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(SnapshotFuzz, SemanticLiesAreRejectedEvenWithValidCrc) {
    // Counters that disagree (admitted + rejected != processed) must be
    // caught by validation, not just framing.
    ControllerSnapshot snap = sample_snapshot();
    snap.metrics.processed = 99;
    EXPECT_THROW(decode_snapshot(encode_snapshot(snap), "lying counters"),
                 CorruptStateError);

    snap = sample_snapshot();
    snap.lambda[0][1] = -1.0;  // dual prices are non-negative
    EXPECT_THROW(decode_snapshot(encode_snapshot(snap), "negative dual"),
                 CorruptStateError);

    snap = sample_snapshot();
    snap.covered_sparse = {8, 8};  // must be strictly ascending
    EXPECT_THROW(decode_snapshot(encode_snapshot(snap), "dup sparse"),
                 CorruptStateError);

    snap = sample_snapshot();
    snap.covered_sparse = {2};  // below the watermark
    EXPECT_THROW(decode_snapshot(encode_snapshot(snap), "sparse below watermark"),
                 CorruptStateError);

    snap = sample_snapshot();
    snap.admitted[0].sites[0].first = 7;  // cloudlet out of range
    EXPECT_THROW(decode_snapshot(encode_snapshot(snap), "bad site"),
                 CorruptStateError);
}

TEST(SnapshotFuzz, SaveLoadRoundTripsThroughDisk) {
    const std::string path = temp_path("snapfuzz_roundtrip.bin");
    const ControllerSnapshot snap = sample_snapshot();
    save_snapshot(path, snap);
    const ControllerSnapshot back = load_snapshot(path);
    EXPECT_EQ(encode_snapshot(back), encode_snapshot(snap));
    std::remove(path.c_str());
}

// --- WAL fuzzing ------------------------------------------------------

TEST(WalFuzz, CleanFileReadsBackInBothModes) {
    const std::string path = temp_path("walfuzz_clean.log");
    build_wal_bytes(path, 5);
    for (WalReadMode mode : {WalReadMode::kStrict, WalReadMode::kRecover}) {
        const WalContents c = read_wal(path, mode);
        EXPECT_EQ(c.wal_seq, 7u);
        EXPECT_EQ(c.config_digest, 0xABCDEF01ULL);
        ASSERT_EQ(c.records.size(), 5u);
        EXPECT_EQ(c.bytes_discarded, 0u);
        EXPECT_EQ(c.records[2].kind, WalRecordKind::kShed);
        EXPECT_EQ(c.records[0].sites.size(), 1u);
        EXPECT_EQ(c.records[1].reject_reason, core::RejectReason::kPricedOut);
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, ZeroLengthWalIsAlwaysCorruption) {
    // The header is created atomically, so an empty WAL can only mean
    // tampering — both modes must refuse it.
    const std::string path = temp_path("walfuzz_empty.log");
    atomic_write_file(path, "");
    EXPECT_THROW((void)read_wal(path, WalReadMode::kStrict), CorruptStateError);
    EXPECT_THROW((void)read_wal(path, WalReadMode::kRecover), CorruptStateError);
    std::remove(path.c_str());
}

TEST(WalFuzz, HeaderTruncationsAreCorruptionInBothModes) {
    const std::string path = temp_path("walfuzz_hdr.log");
    const std::string bytes = build_wal_bytes(path, 2);
    for (std::size_t len = 0; len < 32; ++len) {
        atomic_write_file(path, std::string_view(bytes).substr(0, len));
        EXPECT_THROW((void)read_wal(path, WalReadMode::kStrict), CorruptStateError)
            << "header prefix " << len;
        EXPECT_THROW((void)read_wal(path, WalReadMode::kRecover), CorruptStateError)
            << "header prefix " << len;
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, EveryBodyTruncationRecoversAsTornTail) {
    const std::string path = temp_path("walfuzz_torn.log");
    const std::string bytes = build_wal_bytes(path, 4);
    const WalContents whole = read_wal(path, WalReadMode::kStrict);
    ASSERT_EQ(whole.records.size(), 4u);
    // Offsets of each record's start, plus end-of-file.
    std::vector<std::uint64_t> starts;
    for (const WalRecord& r : whole.records) starts.push_back(r.file_offset);
    starts.push_back(bytes.size());

    for (std::size_t len = 32; len < bytes.size(); ++len) {
        atomic_write_file(path, std::string_view(bytes).substr(0, len));
        // Strict mode refuses any truncation mid-record.
        std::size_t intact = 0;
        while (intact + 1 < starts.size() && starts[intact + 1] <= len) ++intact;
        const bool on_boundary = (starts[intact] == len);
        if (!on_boundary) {
            EXPECT_THROW((void)read_wal(path, WalReadMode::kStrict),
                         CorruptStateError)
                << "strict accepted truncation at " << len;
        }
        // Recover mode drops exactly the torn tail and keeps every
        // record whose frame fully fits.
        const WalContents c = read_wal(path, WalReadMode::kRecover);
        EXPECT_EQ(c.records.size(), intact) << "truncation at " << len;
        EXPECT_EQ(c.valid_size, starts[intact]) << "truncation at " << len;
        EXPECT_EQ(c.bytes_discarded, len - starts[intact]);
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, FlippedCrcByteOnFinalRecordIsTornNotFatal) {
    const std::string path = temp_path("walfuzz_crc_tail.log");
    std::string bytes = build_wal_bytes(path, 3);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    atomic_write_file(path, bytes);
    EXPECT_THROW((void)read_wal(path, WalReadMode::kStrict), CorruptStateError);
    const WalContents c = read_wal(path, WalReadMode::kRecover);
    EXPECT_EQ(c.records.size(), 2u);  // final record dropped as torn
    EXPECT_GT(c.bytes_discarded, 0u);
    std::remove(path.c_str());
}

TEST(WalFuzz, FlippedByteInInteriorRecordIsFatalInBothModes) {
    const std::string path = temp_path("walfuzz_crc_mid.log");
    std::string bytes = build_wal_bytes(path, 3);
    const WalContents whole = read_wal(path, WalReadMode::kStrict);
    // Corrupt a payload byte of the FIRST record: damage before the tail
    // is real corruption, not a crash artifact.
    const std::size_t pos = static_cast<std::size_t>(whole.records[0].file_offset) + 6;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x80);
    atomic_write_file(path, bytes);
    for (WalReadMode mode : {WalReadMode::kStrict, WalReadMode::kRecover}) {
        try {
            (void)read_wal(path, mode);
            FAIL() << "expected CorruptStateError";
        } catch (const CorruptStateError& e) {
            EXPECT_EQ(e.file(), path);
            EXPECT_GE(e.offset(), whole.records[0].file_offset);
            EXPECT_LT(e.offset(), whole.records[1].file_offset);
        }
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, MixedVersionHeaderIsRejected) {
    const std::string path = temp_path("walfuzz_ver.log");
    std::string bytes = build_wal_bytes(path, 1);
    bytes[8] = static_cast<char>(kWalVersion + 9);
    // Re-seal the header CRC so version alone is at fault.
    WireWriter crc;
    crc.put_u32(crc32(std::string_view(bytes).substr(0, 28)));
    bytes.replace(28, 4, crc.bytes());
    atomic_write_file(path, bytes);
    try {
        (void)read_wal(path, WalReadMode::kRecover);
        FAIL() << "expected CorruptStateError";
    } catch (const CorruptStateError& e) {
        EXPECT_EQ(e.offset(), 8u);
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, BadMagicIsRejectedAtOffsetZero) {
    const std::string path = temp_path("walfuzz_magic.log");
    std::string bytes = build_wal_bytes(path, 1);
    bytes[0] = 'X';
    atomic_write_file(path, bytes);
    try {
        (void)read_wal(path, WalReadMode::kRecover);
        FAIL() << "expected CorruptStateError";
    } catch (const CorruptStateError& e) {
        EXPECT_EQ(e.offset(), 0u);
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, OversizedLengthPrefixIsRejected) {
    const std::string path = temp_path("walfuzz_len.log");
    std::string bytes = build_wal_bytes(path, 0);
    // Claim a ludicrous record length; must be rejected without trying
    // to allocate or read that much.
    WireWriter w;
    w.put_u32(0x7FFFFFFFU);
    bytes += w.bytes();
    bytes += std::string(64, 'q');
    atomic_write_file(path, bytes);
    EXPECT_THROW((void)read_wal(path, WalReadMode::kStrict), CorruptStateError);
    std::remove(path.c_str());
}

TEST(WalFuzz, RandomAppendedGarbageNeverCrashes) {
    std::mt19937_64 rng(987654321);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> length(1, 96);
    const std::string path = temp_path("walfuzz_tailjunk.log");
    const std::string clean = build_wal_bytes(path, 2);
    for (int trial = 0; trial < 100; ++trial) {
        std::string junk(length(rng), '\0');
        for (char& c : junk) c = static_cast<char>(byte(rng));
        atomic_write_file(path, clean + junk);
        // Recover mode must either parse the clean prefix (dropping the
        // junk as a torn tail) or reject with a typed error — never UB.
        try {
            const WalContents c = read_wal(path, WalReadMode::kRecover);
            EXPECT_GE(c.records.size(), 2u);
            EXPECT_LE(c.valid_size, clean.size() + junk.size());
        } catch (const CorruptStateError&) {
            // Acceptable: junk that forms an interior-looking anomaly.
        }
    }
    std::remove(path.c_str());
}

TEST(WalFuzz, AppendToTruncatesTornTailAndContinues) {
    const std::string path = temp_path("walfuzz_appendto.log");
    const std::string bytes = build_wal_bytes(path, 3);
    // Tear the last record in half.
    const WalContents whole = read_wal(path, WalReadMode::kStrict);
    const std::uint64_t keep =
        whole.records[2].file_offset + 5;  // mid final record
    atomic_write_file(path, std::string_view(bytes).substr(0, keep));

    const WalContents torn = read_wal(path, WalReadMode::kRecover);
    ASSERT_EQ(torn.records.size(), 2u);
    WalWriter w = WalWriter::append_to(path, torn.valid_size);
    WalRecord rec;
    rec.kind = WalRecordKind::kShed;
    rec.seq = 42;
    rec.request = sample_request(42);
    w.append(rec);
    w.close();

    const WalContents healed = read_wal(path, WalReadMode::kStrict);
    ASSERT_EQ(healed.records.size(), 3u);
    EXPECT_EQ(healed.records[2].seq, 42u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace vnfr::serve
