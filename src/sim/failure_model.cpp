#include "sim/failure_model.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/math.hpp"

namespace vnfr::sim {

double analytic_availability(const core::Instance& instance,
                             const workload::Request& request,
                             const core::Placement& placement) {
    const double vnf_rel = VNFR_CHECK_PROB(instance.catalog.reliability(request.vnf));
    double log_all_fail = 0.0;
    for (const core::Site& site : placement.sites) {
        if (site.replicas <= 0)
            throw std::invalid_argument("analytic_availability: non-positive replicas");
        const double site_ok = VNFR_CHECK_PROB(
            instance.network.cloudlet(site.cloudlet).reliability *
            common::at_least_one(vnf_rel, site.replicas));
        log_all_fail += common::log1m(site_ok);
    }
    if (placement.sites.empty()) return 0.0;
    return VNFR_CHECK_PROB(common::one_minus_exp(log_all_fail));
}

bool sample_served(const core::Instance& instance, const workload::Request& request,
                   const core::Placement& placement, common::Rng& rng) {
    const double vnf_rel = instance.catalog.reliability(request.vnf);
    for (const core::Site& site : placement.sites) {
        if (!rng.bernoulli(instance.network.cloudlet(site.cloudlet).reliability)) continue;
        for (int k = 0; k < site.replicas; ++k) {
            if (rng.bernoulli(vnf_rel)) return true;
        }
    }
    return false;
}

double monte_carlo_availability(const core::Instance& instance,
                                const workload::Request& request,
                                const core::Placement& placement, std::size_t trials,
                                common::Rng& rng) {
    if (trials == 0) throw std::invalid_argument("monte_carlo_availability: zero trials");
    std::size_t served = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        if (sample_served(instance, request, placement, rng)) ++served;
    }
    return VNFR_CHECK_PROB(static_cast<double>(served) / static_cast<double>(trials));
}

}  // namespace vnfr::sim
