// Order-sensitive 64-bit digests over metrics and controller state.
//
// One shared construction — FNV-1a over the raw bytes of each mixed-in
// value, doubles contributed as their IEEE-754 bit patterns — so every
// checksum in the repo (experiment aggregates, recovery reports, the
// admission controller's durable state) collides only on bit-identical
// inputs and is comparable across thread counts, restarts and processes.
#pragma once

#include <bit>
#include <cstdint>

#include "common/stats.hpp"

namespace vnfr::common {

/// Incremental FNV-1a mixer. Mix order matters: two digests agree only
/// when the same values were mixed in the same order.
class Fnv1a {
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    Fnv1a& mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xffULL;
            hash_ *= kPrime;
        }
        return *this;
    }

    Fnv1a& mix(double v) { return mix(std::bit_cast<std::uint64_t>(v)); }

    /// Every aggregate of a RunningStats accumulator: count and the raw
    /// bit patterns of sum/mean/variance/min/max.
    Fnv1a& mix(const RunningStats& s) {
        mix(static_cast<std::uint64_t>(s.count()));
        mix(s.sum());
        mix(s.mean());
        mix(s.variance());
        mix(s.min());
        mix(s.max());
        return *this;
    }

    [[nodiscard]] std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_{kOffsetBasis};
};

}  // namespace vnfr::common
