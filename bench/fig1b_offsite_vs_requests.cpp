// Figure 1(b): revenue of the off-site algorithms vs the number of
// requests.
//
// Series: Algorithm 2, the reliability-greedy baseline, and the offline LP
// bound of the log-linearized ILP (Eqs. 48-53). Expected shape: Algorithm 2
// above greedy throughout, widening with load (paper: ~15.4%).
#include "bench_common.hpp"

using namespace vnfr;

int main() {
    const std::vector<std::size_t> sweep = bench::quick_mode()
                                               ? std::vector<std::size_t>{100, 300}
                                               : std::vector<std::size_t>{100, 200, 300, 400,
                                                                          500, 600, 700, 800};
    const std::vector<sim::Algorithm> algorithms{sim::Algorithm::kOffsitePrimalDual,
                                                 sim::Algorithm::kOffsiteGreedy};

    bench::print_thread_note();
    std::vector<bench::SeriesRow> rows;
    for (const std::size_t n : sweep) {
        const auto factory = bench::make_factory(bench::paper_environment(n));

        sim::ExperimentConfig online_cfg;
        online_cfg.algorithms = algorithms;
        online_cfg.seeds = bench::quick_mode() ? 2 : 5;
        online_cfg.base_seed = bench::scenario_seed("fig1b", n);
        sim::ExperimentOutcome outcome = sim::run_experiment(factory, online_cfg);

        // The off-site LP is an order of magnitude bigger than the on-site
        // one (every (i, j) pair has a Y variable), so the bound is averaged
        // over fewer seeds than the cheap online replays.
        sim::ExperimentConfig offline_cfg;
        offline_cfg.algorithms = {sim::Algorithm::kOffsiteGreedy};  // ignored, cheap
        offline_cfg.seeds = 2;
        offline_cfg.base_seed = bench::scenario_seed("fig1b", n);
        offline_cfg.compute_offline = true;
        offline_cfg.offline_scheme = core::Scheme::kOffsite;
        offline_cfg.offline.run_ilp = false;
        outcome.offline_bound = sim::run_experiment(factory, offline_cfg).offline_bound;

        rows.push_back({static_cast<double>(n), std::move(outcome)});
    }
    bench::print_series("Figure 1(b): off-site scheme, revenue vs number of requests",
                        "requests", algorithms, rows, /*with_offline_bound=*/true);
    bench::print_final_gap(rows);
    return 0;
}
