// Saturation ceiling for the multiplicative dual-price updates.
//
// Eq. 34 / Eq. 67 grow lambda_{tj} by a factor > 1 on every admission plus
// an additive term proportional to the payment. On long traces that pound
// a single cloudlet with escalating payments the recursion is unbounded:
// left alone it overflows to +inf, after which every price comparison in
// decide() degenerates (pay - inf <= 0 rejects everything forever, and a
// release build without DCHECKs would never notice).
//
// Saturating at kDualPriceCeiling is behaviour-preserving for any real
// workload: payments are bounded by the double range, and a slot whose
// lambda has reached 1e30 already prices out every representable payment
// (price >= demand * lambda with demand >= 1), so values beyond the
// ceiling carry no additional information. The ceiling leaves ample
// headroom for the price summation over a request window (demand ~ 1e3,
// duration ~ 1e3 slots => price <= ~1e36, comfortably finite).
#pragma once

namespace vnfr::core {

inline constexpr double kDualPriceCeiling = 1e30;

}  // namespace vnfr::core
