file(REMOVE_RECURSE
  "CMakeFiles/failure_injection_study.dir/failure_injection_study.cpp.o"
  "CMakeFiles/failure_injection_study.dir/failure_injection_study.cpp.o.d"
  "failure_injection_study"
  "failure_injection_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_injection_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
