#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace vnfr::common {

struct ThreadPool::Job {
    std::size_t begin{0};
    std::size_t end{0};
    std::size_t grain{1};
    std::size_t block_count{0};
    const BlockFn* body{nullptr};

    std::atomic<std::size_t> next_block{0};
    std::atomic<std::size_t> finished_blocks{0};

    Mutex error_mutex;
    /// (block index, exception) pairs; rethrow the lowest block index so
    /// failure reporting does not depend on thread scheduling.
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors
        VNFR_GUARDED_BY(error_mutex);
};

ThreadPool::ThreadPool(std::size_t thread_count)
    : thread_count_(thread_count == 0 ? default_thread_count() : thread_count) {
    workers_.reserve(thread_count_ - 1);
    for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(&mutex_);
        stopping_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::default_thread_count() {
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (const char* env = std::getenv("VNFR_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1) {
            return std::min(static_cast<std::size_t>(parsed), 4 * hardware);
        }
    }
    return hardware;
}

void ThreadPool::run_blocks(Job& job) {
    for (;;) {
        const std::size_t block = job.next_block.fetch_add(1, std::memory_order_relaxed);
        if (block >= job.block_count) return;
        const std::size_t lo = job.begin + block * job.grain;
        const std::size_t hi = std::min(lo + job.grain, job.end);
        try {
            (*job.body)(lo, hi);
        } catch (...) {
            const MutexLock lock(&job.error_mutex);
            job.errors.emplace_back(block, std::current_exception());
        }
        job.finished_blocks.fetch_add(1, std::memory_order_release);
    }
}

void ThreadPool::worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            MutexLock lock(&mutex_);
            while (!stopping_ && (job_ == nullptr || job_epoch_ == seen_epoch)) {
                job_cv_.wait(mutex_);
            }
            if (stopping_) return;
            job = job_;
            seen_epoch = job_epoch_;
        }
        run_blocks(*job);
        // The caller may be sleeping on done_cv_. Acquiring the mutex before
        // notifying orders this worker's finished_blocks increments against
        // the caller's predicate check, ruling out a lost wakeup.
        {
            const MutexLock lock(&mutex_);
        }
        done_cv_.notify_one();
    }
}

void ThreadPool::parallel_for_blocked(std::size_t begin, std::size_t end,
                                      std::size_t grain, const BlockFn& body) {
    if (grain == 0) throw std::invalid_argument("parallel_for_blocked: grain == 0");
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t block_count = (n + grain - 1) / grain;

    if (thread_count_ == 1 || block_count == 1) {
        // Serial fast path: run blocks in index order on the caller. A
        // throwing block must not skip the remaining blocks — the parallel
        // path drains every block regardless of failures, and side effects
        // have to be thread-count-invariant — so defer the first error.
        std::exception_ptr first_error;
        for (std::size_t b = 0; b < block_count; ++b) {
            const std::size_t lo = begin + b * grain;
            try {
                body(lo, std::min(lo + grain, end));
            } catch (...) {
                if (first_error == nullptr) first_error = std::current_exception();
            }
        }
        if (first_error != nullptr) std::rethrow_exception(first_error);
        return;
    }

    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->block_count = block_count;
    job->body = &body;

    {
        const MutexLock lock(&mutex_);
        VNFR_CHECK(job_ == nullptr, "ThreadPool::parallel_for is not reentrant");
        job_ = job;
        ++job_epoch_;
    }
    job_cv_.notify_all();

    // The caller is one of the pool's threads: claim blocks alongside the
    // workers instead of blocking immediately.
    run_blocks(*job);

    {
        MutexLock lock(&mutex_);
        while (job->finished_blocks.load(std::memory_order_acquire) !=
               job->block_count) {
            done_cv_.wait(mutex_);
        }
        job_ = nullptr;
    }

    // All workers are past their last errors write (finished_blocks was
    // published with release order), but take the error lock anyway: the
    // uncontended acquire is free and keeps every access to the guarded
    // vector inside its capability.
    const MutexLock error_lock(&job->error_mutex);
    if (!job->errors.empty()) {
        std::pair<std::size_t, std::exception_ptr>* first = &job->errors.front();
        for (auto& e : job->errors) {
            if (e.first < first->first) first = &e;
        }
        std::rethrow_exception(first->second);
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, const IndexFn& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t target_blocks = 4 * thread_count_;
    const std::size_t grain = std::max<std::size_t>(1, n / target_blocks);
    parallel_for_blocked(begin, end, grain, [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
    });
}

}  // namespace vnfr::common
