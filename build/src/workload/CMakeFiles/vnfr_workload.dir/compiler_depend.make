# Empty compiler generated dependencies file for vnfr_workload.
# This may be replaced when dependencies are built.
