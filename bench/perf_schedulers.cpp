// Microbenchmarks: per-request decision latency of the online schedulers
// as the cloudlet count grows (an online admission controller sits on the
// request path, so decide() cost is the deployment-relevant number), plus
// replication throughput of the parallel experiment engine vs thread count.
#include <benchmark/benchmark.h>

#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "net/generators.hpp"
#include "sim/experiment.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace vnfr;

core::Instance make_bench_instance(std::size_t cloudlets, std::size_t requests) {
    // Counter-based stream seeding: the instance is a pure function of
    // (master, cloudlets) — identical across runs and thread settings.
    common::Rng rng = common::stream_rng(0x9e7f'5c4d, cloudlets);
    net::Graph g = net::erdos_renyi(cloudlets + 5, 0.3, rng, true);
    core::Instance inst{edge::MecNetwork(std::move(g)), vnf::Catalog::paper_default(rng), 60,
                        {}};
    edge::CloudletAttachment attach;
    attach.count = cloudlets;
    attach.capacity_min = 1e7;  // effectively infinite: isolate pricing cost
    attach.capacity_max = 2e7;
    inst.network.attach_random_cloudlets(attach, rng);
    workload::GeneratorConfig wl;
    wl.horizon = 60;
    wl.count = requests;
    wl.duration_max = 12;
    inst.requests = workload::generate(wl, inst.catalog, rng);
    inst.validate();
    return inst;
}

void run_decide_benchmark(benchmark::State& state, sim::Algorithm algorithm) {
    const auto cloudlets = static_cast<std::size_t>(state.range(0));
    const core::Instance inst = make_bench_instance(cloudlets, 4096);
    auto scheduler = sim::make_scheduler(algorithm, inst);
    std::size_t next = 0;
    for (auto _ : state) {
        if (next == inst.requests.size()) {
            // Fresh scheduler once the request stream is exhausted, outside
            // the timed region.
            state.PauseTiming();
            scheduler = sim::make_scheduler(algorithm, inst);
            next = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(scheduler->decide(inst.requests[next++]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_OnsitePrimalDualDecide(benchmark::State& state) {
    run_decide_benchmark(state, sim::Algorithm::kOnsitePrimalDual);
}
void BM_OnsiteGreedyDecide(benchmark::State& state) {
    run_decide_benchmark(state, sim::Algorithm::kOnsiteGreedy);
}
void BM_OffsitePrimalDualDecide(benchmark::State& state) {
    run_decide_benchmark(state, sim::Algorithm::kOffsitePrimalDual);
}
void BM_OffsiteGreedyDecide(benchmark::State& state) {
    run_decide_benchmark(state, sim::Algorithm::kOffsiteGreedy);
}

BENCHMARK(BM_OnsitePrimalDualDecide)->Arg(5)->Arg(10)->Arg(20)->Arg(40);
BENCHMARK(BM_OnsiteGreedyDecide)->Arg(5)->Arg(10)->Arg(20)->Arg(40);
BENCHMARK(BM_OffsitePrimalDualDecide)->Arg(5)->Arg(10)->Arg(20)->Arg(40);
BENCHMARK(BM_OffsiteGreedyDecide)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

/// Whole replications per second through the parallel experiment engine at
/// state.range(0) threads — the macro counterpart of the decide() micros.
void BM_ParallelExperimentReplications(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    sim::ExperimentConfig cfg;
    cfg.algorithms = {sim::Algorithm::kOnsitePrimalDual, sim::Algorithm::kOnsiteGreedy};
    cfg.seeds = 8;
    cfg.base_seed = common::stream_seed(0x9e7f'5c4d, 1);
    cfg.threads = threads;
    const sim::InstanceFactory factory =
        sim::make_config_factory(sim::golden_environment(120));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_experiment(factory, cfg));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cfg.seeds));
}

BENCHMARK(BM_ParallelExperimentReplications)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
