#include "core/offline.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/greedy.hpp"
#include "helpers.hpp"
#include "opt/simplex.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

Instance tiny_instance(common::Rng& rng, std::size_t n, std::size_t m) {
    // Small enough for exhaustive search but non-trivial.
    return random_instance(rng, n, m, 6, 4, 8);
}

TEST(OfflineModel, OnsiteVariableBookkeeping) {
    const Instance inst = small_instance({0.99, 0.95}, 10.0, 5,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0),
                                          make_request(1, 0, 0.97, 1, 2, 4.0)});
    const OfflineModel model = build_onsite_model(inst);
    ASSERT_EQ(model.x_vars.size(), 2u);
    // Request 0 (R=0.9) fits both cloudlets; request 1 (R=0.97) only the
    // 0.99-reliable one.
    EXPECT_TRUE(model.y_vars[0][0].has_value());
    EXPECT_TRUE(model.y_vars[0][1].has_value());
    EXPECT_TRUE(model.y_vars[1][0].has_value());
    EXPECT_FALSE(model.y_vars[1][1].has_value());
    // Binaries = 2 X + 3 Y.
    EXPECT_EQ(model.binaries.size(), 5u);
}

TEST(OfflineModel, OnsiteInfeasibleRequestForcedToZero) {
    // No cloudlet can meet R = 0.999: the assignment row forces X = 0.
    const Instance inst = small_instance({0.99}, 10.0, 5,
                                         {make_request(0, 0, 0.999, 0, 2, 100.0)});
    const OfflineModel model = build_onsite_model(inst);
    const opt::LpSolution sol = opt::solve_lp(model.lp);
    ASSERT_EQ(sol.status, opt::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 0.0, 1e-9);
}

TEST(OfflineModel, OffsiteRejectedRequestHasNoPlacements) {
    // Fixing X = 0 must force all Y to 0 through the anchoring row (51).
    const Instance inst = small_instance({0.99, 0.98}, 10.0, 5,
                                         {make_request(0, 0, 0.9, 0, 2, 5.0)});
    OfflineModel model = build_offsite_model(inst);
    model.lp.set_bounds(model.x_vars[0], 0.0, 0.0);
    const opt::LpSolution sol = opt::solve_lp(model.lp);
    ASSERT_EQ(sol.status, opt::SolveStatus::kOptimal);
    for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(sol.x[*model.y_vars[0][j]], 0.0, 1e-7);
    }
}

TEST(OfflineModel, OffsiteAdmissionRequiresReliability) {
    // Fixing X = 1 with weak cloudlets must be infeasible when even the
    // full cloudlet set cannot reach R.
    const Instance inst = small_instance({0.91, 0.91}, 10.0, 5,
                                         {make_request(0, 1, 0.995, 0, 2, 5.0)});
    OfflineModel model = build_offsite_model(inst);
    model.lp.set_bounds(model.x_vars[0], 1.0, 1.0);
    const opt::LpSolution sol = opt::solve_lp(model.lp);
    EXPECT_EQ(sol.status, opt::SolveStatus::kInfeasible);
}

TEST(OfflineModel, AnchoringRowsDoNotChangeTheValue) {
    // Rows (51) pin rejected requests' Y to 0 but never change the optimal
    // value (LP or ILP) -- the basis for the fast value-only solver.
    common::Rng rng(127);
    const Instance inst = tiny_instance(rng, 7, 3);
    const OfflineModel full = build_offsite_model(inst, true);
    const OfflineModel relaxed = build_offsite_model(inst, false);
    EXPECT_GT(full.lp.row_count(), relaxed.lp.row_count());

    const opt::LpSolution lp_full = opt::solve_lp(full.lp);
    const opt::LpSolution lp_relaxed = opt::solve_lp(relaxed.lp);
    ASSERT_EQ(lp_full.status, opt::SolveStatus::kOptimal);
    ASSERT_EQ(lp_relaxed.status, opt::SolveStatus::kOptimal);
    EXPECT_NEAR(lp_full.objective, lp_relaxed.objective, 1e-6);

    const opt::IlpSolution ilp_full = opt::solve_ilp(full.lp, full.binaries);
    const opt::IlpSolution ilp_relaxed = opt::solve_ilp(relaxed.lp, relaxed.binaries);
    ASSERT_TRUE(ilp_full.proven_optimal);
    ASSERT_TRUE(ilp_relaxed.proven_optimal);
    EXPECT_NEAR(ilp_full.objective, ilp_relaxed.objective, 1e-6);
}

TEST(SolveOffline, LpBoundDominatesIlp) {
    common::Rng rng(67);
    const Instance inst = tiny_instance(rng, 8, 3);
    for (const Scheme scheme : {Scheme::kOnsite, Scheme::kOffsite}) {
        const OfflineResult res = solve_offline(inst, scheme);
        ASSERT_TRUE(res.lp_optimal);
        ASSERT_TRUE(res.has_ilp);
        EXPECT_GE(res.lp_bound, res.ilp_value - 1e-6);
    }
}

TEST(SolveOffline, LpOnlyModeSkipsIlp) {
    common::Rng rng(71);
    const Instance inst = tiny_instance(rng, 6, 2);
    OfflineConfig cfg;
    cfg.run_ilp = false;
    const OfflineResult res = solve_offline(inst, Scheme::kOnsite, cfg);
    EXPECT_TRUE(res.lp_optimal);
    EXPECT_FALSE(res.has_ilp);
    EXPECT_EQ(res.bnb_nodes, 0u);
}

// Property: branch-and-bound on the ILP models equals exhaustive search.
class OfflineExactTest : public ::testing::TestWithParam<int> {};

TEST_P(OfflineExactTest, OnsiteIlpMatchesExhaustive) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const Instance inst = tiny_instance(rng, 7, 3);
    const ExhaustiveResult exact = exhaustive_onsite(inst);
    const OfflineResult ilp = solve_offline(inst, Scheme::kOnsite);
    ASSERT_TRUE(ilp.has_ilp);
    ASSERT_TRUE(ilp.ilp_proven);
    EXPECT_NEAR(ilp.ilp_value, exact.revenue, 1e-6);
    EXPECT_GE(ilp.lp_bound, exact.revenue - 1e-6);
}

TEST_P(OfflineExactTest, OffsiteIlpMatchesExhaustive) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 7);
    const Instance inst = tiny_instance(rng, 6, 3);
    const ExhaustiveResult exact = exhaustive_offsite(inst);
    const OfflineResult ilp = solve_offline(inst, Scheme::kOffsite);
    ASSERT_TRUE(ilp.has_ilp);
    ASSERT_TRUE(ilp.ilp_proven);
    EXPECT_NEAR(ilp.ilp_value, exact.revenue, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineExactTest, ::testing::Range(0, 8));

TEST(Exhaustive, RespectsSizeGuards) {
    common::Rng rng(73);
    const Instance big = random_instance(rng, 20, 3, 6);
    EXPECT_THROW(exhaustive_onsite(big), std::invalid_argument);
    EXPECT_THROW(exhaustive_offsite(big), std::invalid_argument);
}

TEST(Exhaustive, OptimalDecisionsAreFeasible) {
    common::Rng rng(79);
    const Instance inst = tiny_instance(rng, 6, 3);
    const ExhaustiveResult exact = exhaustive_onsite(inst);
    // Replay the decisions and confirm revenue and capacity feasibility.
    edge::ResourceLedger ledger(inst.network.capacities(), inst.horizon);
    double revenue = 0.0;
    for (std::size_t i = 0; i < exact.decisions.size(); ++i) {
        const Decision& d = exact.decisions[i];
        if (!d.admitted) continue;
        revenue += inst.requests[i].payment;
        for (const Site& s : d.placement.sites) {
            ASSERT_TRUE(ledger.reserve(
                s.cloudlet, inst.requests[i].arrival, inst.requests[i].end(),
                s.replicas * inst.catalog.compute_units(inst.requests[i].vnf)));
        }
    }
    EXPECT_NEAR(revenue, exact.revenue, 1e-9);
}

TEST(SolveOffline, DominatesGreedyOnline) {
    // The offline optimum upper-bounds any online algorithm's revenue.
    common::Rng rng(83);
    const Instance inst = tiny_instance(rng, 8, 3);
    OnsiteGreedy greedy(inst);
    const ScheduleResult greedy_result = run_online(inst, greedy);
    const OfflineResult off = solve_offline(inst, Scheme::kOnsite);
    ASSERT_TRUE(off.has_ilp);
    EXPECT_GE(off.ilp_value, greedy_result.revenue - 1e-6);
}

}  // namespace
}  // namespace vnfr::core
