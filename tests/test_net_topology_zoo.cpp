#include "net/topology_zoo.hpp"

#include <gtest/gtest.h>

#include "net/algorithms.hpp"

namespace vnfr::net {
namespace {

TEST(TopologyZoo, ListsAllNames) {
    const auto names = topology_names();
    ASSERT_EQ(names.size(), 6u);
    for (const auto& name : names) {
        EXPECT_NO_THROW(load_topology(name)) << name;
    }
}

TEST(TopologyZoo, UnknownNameThrows) {
    EXPECT_THROW(load_topology("does-not-exist"), std::invalid_argument);
}

TEST(TopologyZoo, AbileneShape) {
    const Graph g = load_topology("abilene");
    EXPECT_EQ(g.node_count(), 11u);
    EXPECT_EQ(g.edge_count(), 14u);
    EXPECT_TRUE(is_connected(g));
}

TEST(TopologyZoo, NsfnetShape) {
    const Graph g = load_topology("nsfnet");
    EXPECT_EQ(g.node_count(), 14u);
    EXPECT_EQ(g.edge_count(), 21u);
    EXPECT_TRUE(is_connected(g));
}

TEST(TopologyZoo, GeantShape) {
    const Graph g = load_topology("geant");
    EXPECT_EQ(g.node_count(), 23u);
    EXPECT_EQ(g.edge_count(), 37u);
    EXPECT_TRUE(is_connected(g));
}

TEST(TopologyZoo, AttShape) {
    const Graph g = load_topology("att");
    EXPECT_EQ(g.node_count(), 25u);
    EXPECT_TRUE(is_connected(g));
}

TEST(TopologyZoo, Internet2Shape) {
    const Graph g = load_topology("internet2");
    EXPECT_EQ(g.node_count(), 34u);
    EXPECT_TRUE(is_connected(g));
}

TEST(TopologyZoo, Cost266Shape) {
    const Graph g = load_topology("cost266");
    EXPECT_EQ(g.node_count(), 36u);
    EXPECT_TRUE(is_connected(g));
    // The COST 266 reference network is 2-connected by design: every node
    // has degree >= 2.
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        EXPECT_GE(g.degree(NodeId{static_cast<std::int64_t>(v)}), 2u);
    }
}

class ZooTopologyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooTopologyTest, AllNodesNamed) {
    const Graph g = load_topology(GetParam());
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        EXPECT_FALSE(g.node_name(NodeId{static_cast<std::int64_t>(v)}).empty());
    }
}

TEST_P(ZooTopologyTest, WeightsAreGeographicDistances) {
    const Graph g = load_topology(GetParam());
    for (const Edge& e : g.edges()) {
        EXPECT_GT(e.weight, 0.0);
        EXPECT_NEAR(e.weight, std::max(g.euclidean(e.a, e.b), 0.1), 1e-9);
    }
}

TEST_P(ZooTopologyTest, NoIsolatedNodes) {
    const Graph g = load_topology(GetParam());
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        EXPECT_GE(g.degree(NodeId{static_cast<std::int64_t>(v)}), 1u);
    }
}

TEST_P(ZooTopologyTest, LoadIsDeterministic) {
    const Graph a = load_topology(GetParam());
    const Graph b = load_topology(GetParam());
    ASSERT_EQ(a.node_count(), b.node_count());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (std::size_t i = 0; i < a.edge_count(); ++i) {
        EXPECT_EQ(a.edges()[i].a, b.edges()[i].a);
        EXPECT_DOUBLE_EQ(a.edges()[i].weight, b.edges()[i].weight);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ZooTopologyTest,
                         ::testing::Values("abilene", "nsfnet", "geant", "att",
                                           "internet2", "cost266"));

}  // namespace
}  // namespace vnfr::net
