#!/usr/bin/env python3
"""Runs clang-tidy over every translation unit in src/ using the build
tree's compile_commands.json.

Registered as the ``clang_tidy_src`` ctest entry. Exits 77 (ctest SKIP)
when clang-tidy or the compilation database is unavailable, so the suite
stays runnable in minimal containers; CI installs clang-tidy and treats
findings as failures (.clang-tidy sets WarningsAsErrors: '*').

Usage: run_clang_tidy.py <source-dir> <build-dir> [extra clang-tidy args...]
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    source_dir = Path(argv[1]).resolve()
    build_dir = Path(argv[2]).resolve()
    extra = argv[3:]

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping")
        return SKIP
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        print(f"run_clang_tidy: {database} missing; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON; skipping")
        return SKIP

    with open(database, encoding="utf-8") as f:
        entries = json.load(f)
    src_prefix = (source_dir / "src").as_posix()
    files = sorted({
        e["file"] for e in entries
        if Path(e["file"]).as_posix().startswith(src_prefix)
    })
    if not files:
        print("run_clang_tidy: no src/ translation units in the database")
        return SKIP

    jobs = max(1, multiprocessing.cpu_count() - 1)
    failures = 0
    # Chunk the file list across sequential clang-tidy invocations with -j
    # worth of files each; clang-tidy itself is single-threaded per TU.
    procs: list[tuple[str, subprocess.Popen]] = []

    def drain(limit: int) -> None:
        nonlocal failures
        while len(procs) > limit:
            name, proc = procs.pop(0)
            out, _ = proc.communicate()
            if proc.returncode != 0:
                failures += 1
                sys.stdout.write(out)
                print(f"run_clang_tidy: FAILED {name}")

    for path in files:
        procs.append((path, subprocess.Popen(
            [tidy, "-p", str(build_dir), "--quiet", *extra, path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)))
        drain(jobs)
    drain(0)

    print(f"run_clang_tidy: {len(files)} files, {failures} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
