
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_sfc_chains.cpp" "bench/CMakeFiles/ablation_sfc_chains.dir/ablation_sfc_chains.cpp.o" "gcc" "bench/CMakeFiles/ablation_sfc_chains.dir/ablation_sfc_chains.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vnfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/vnfr_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/vnfr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
