#include <gtest/gtest.h>

#include <limits>

#include "common/contracts.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "sim/recovery_engine.hpp"
#include "sim/recovery_faults.hpp"
#include "sim/recovery_study.hpp"

namespace vnfr::sim {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

core::Decision admit(std::int64_t request, std::vector<core::Site> sites) {
    core::Decision d;
    d.admitted = true;
    d.placement = core::Placement{RequestId{request}, std::move(sites)};
    return d;
}

FaultEvent cloudlet_crash(TimeSlot slot, std::int64_t cloudlet, TimeSlot down_slots) {
    FaultEvent e;
    e.slot = slot;
    e.kind = FaultKind::kCloudletCrash;
    e.cloudlet = CloudletId{cloudlet};
    e.down_slots = down_slots;
    return e;
}

FaultEvent instance_crash(TimeSlot slot, std::size_t request_index, std::size_t site,
                          std::size_t replica) {
    FaultEvent e;
    e.slot = slot;
    e.kind = FaultKind::kInstanceCrash;
    e.request_index = request_index;
    e.site = site;
    e.replica = replica;
    return e;
}

/// One request (type 0: compute 1, r = 0.95) on cloudlet 0, cloudlet 0
/// crashes at slot 2 for 3 slots. Cloudlet 1 survives untouched.
struct CrashScenario {
    core::Instance instance = small_instance({0.98, 0.97}, 10.0, 10,
                                             {make_request(0, 0, 0.9, 0, 10, 5.0)});
    std::vector<core::Decision> decisions = {admit(0, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;

    CrashScenario() {
        schedule.events = {cloudlet_crash(2, 0, 3)};
        schedule.cloudlet_crashes = 1;
    }
};

TEST(FaultInjector, DeterministicBySeed) {
    common::Rng rng(501);
    const core::Instance inst = random_instance(rng, 40, 3, 12);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    const FaultInjectorConfig cfg;
    const FaultSchedule a = generate_fault_schedule(inst, result.decisions, cfg, 7);
    const FaultSchedule b = generate_fault_schedule(inst, result.decisions, cfg, 7);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].slot, b.events[i].slot);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].cloudlet, b.events[i].cloudlet);
        EXPECT_EQ(a.events[i].down_slots, b.events[i].down_slots);
        EXPECT_EQ(a.events[i].request_index, b.events[i].request_index);
    }
    // A different seed yields a different event sequence.
    const auto fingerprint = [](const FaultSchedule& s) {
        std::uint64_t h = 0;
        for (const FaultEvent& e : s.events) {
            h = h * 1099511628211ULL + static_cast<std::uint64_t>(e.slot) * 7 +
                static_cast<std::uint64_t>(e.kind) * 3 +
                static_cast<std::uint64_t>(e.cloudlet.value);
        }
        return h;
    };
    const FaultSchedule c = generate_fault_schedule(inst, result.decisions, cfg, 8);
    EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(FaultInjector, CountsMatchEvents) {
    common::Rng rng(503);
    const core::Instance inst = random_instance(rng, 40, 3, 12);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    FaultInjectorConfig cfg;
    cfg.rack_failure_per_slot = 0.05;
    const FaultSchedule s = generate_fault_schedule(inst, result.decisions, cfg, 11);
    std::size_t crashes = 0, instances = 0, blips = 0, racks = 0;
    TimeSlot last_slot = 0;
    for (const FaultEvent& e : s.events) {
        EXPECT_GE(e.slot, last_slot);  // sorted by slot
        last_slot = e.slot;
        switch (e.kind) {
            case FaultKind::kCloudletCrash: ++crashes; break;
            case FaultKind::kInstanceCrash: ++instances; break;
            case FaultKind::kTransientBlip: ++blips; break;
            case FaultKind::kRackFailure: ++racks; break;
        }
    }
    EXPECT_EQ(s.cloudlet_crashes, crashes);
    EXPECT_EQ(s.instance_crashes, instances);
    EXPECT_EQ(s.transient_blips, blips);
    EXPECT_EQ(s.rack_failures, racks);
    EXPECT_GT(s.events.size(), 0u);
}

TEST(FaultInjector, ValidatesConfig) {
    const auto inst = small_instance({0.99}, 10.0, 5, {});
    FaultInjectorConfig cfg;
    cfg.cloudlet_crash_per_slot = 1.5;
    EXPECT_THROW(generate_fault_schedule(inst, {}, cfg, 1), common::ContractViolation);
    cfg = FaultInjectorConfig{};
    cfg.cloudlet_mttr_slots = 0.0;
    EXPECT_THROW(generate_fault_schedule(inst, {}, cfg, 1), common::ContractViolation);
    cfg = FaultInjectorConfig{};
    cfg.cloudlet_mttr_slots = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(generate_fault_schedule(inst, {}, cfg, 1), common::ContractViolation);
    cfg = FaultInjectorConfig{};
    cfg.rack_span = 0;
    EXPECT_THROW(generate_fault_schedule(inst, {}, cfg, 1), common::ContractViolation);
    // Decisions must parallel the requests.
    const auto inst2 = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 1.0)});
    EXPECT_THROW(generate_fault_schedule(inst2, {}, FaultInjectorConfig{}, 1),
                 std::invalid_argument);
}

TEST(RecoveryEngine, PolicyNamesAreStable) {
    EXPECT_STREQ(to_string(RecoveryPolicy::kNone), "none");
    EXPECT_STREQ(to_string(RecoveryPolicy::kLocalRespawn), "local-respawn");
    EXPECT_STREQ(to_string(RecoveryPolicy::kRemoteMigrate), "remote-migrate");
    EXPECT_STREQ(to_string(RecoveryPolicy::kReadmit), "readmit");
    EXPECT_STREQ(to_string(FaultKind::kCloudletCrash), "cloudlet-crash");
    EXPECT_STREQ(to_string(FaultKind::kInstanceCrash), "instance-crash");
    EXPECT_STREQ(to_string(FaultKind::kTransientBlip), "transient-blip");
    EXPECT_STREQ(to_string(FaultKind::kRackFailure), "rack-failure");
}

TEST(RecoveryEngine, NonePolicyLeavesInstancesDead) {
    const CrashScenario s;
    const RecoveryReport r =
        run_recovery_study(s.instance, s.decisions, s.schedule, RecoveryConfig{});
    // Served slots 0..1, then dead for the rest of the window.
    EXPECT_EQ(r.request_slots, 10u);
    EXPECT_EQ(r.served_slots, 2u);
    EXPECT_EQ(r.disrupted_slots, 8u);
    EXPECT_EQ(r.cloudlet_crashes, 1u);
    EXPECT_EQ(r.instances_lost, 1u);
    EXPECT_EQ(r.outages, 1u);
    EXPECT_EQ(r.recovered_outages, 0u);
    EXPECT_EQ(r.local_respawns + r.remote_migrations + r.readmissions, 0u);
    EXPECT_EQ(r.sla_requests, 1u);
    EXPECT_EQ(r.sla_violations, 1u);
    EXPECT_DOUBLE_EQ(r.mean_delivered(), 0.2);
    EXPECT_EQ(r.capacity_violations, 0u);
}

TEST(RecoveryEngine, LocalRespawnWaitsForRebootThenRecovers) {
    const CrashScenario s;
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kLocalRespawn;
    const RecoveryReport r = run_recovery_study(s.instance, s.decisions, s.schedule, cfg);
    // Cloudlet 0 is down over slots 2..4; the respawn lands at slot 5 and
    // serves from slot 6 (one slot of spin-up).
    EXPECT_EQ(r.local_respawns, 1u);
    EXPECT_EQ(r.served_slots, 6u);
    EXPECT_EQ(r.recovered_outages, 1u);
    EXPECT_EQ(r.recovery_slots_total, 4u);
    EXPECT_DOUBLE_EQ(r.mean_time_to_recover(), 4.0);
    EXPECT_EQ(r.capacity_violations, 0u);
}

TEST(RecoveryEngine, RemoteMigrateMovesToSurvivingCloudlet) {
    const CrashScenario s;
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    const RecoveryReport r = run_recovery_study(s.instance, s.decisions, s.schedule, cfg);
    // Migration happens the slot the crash lands (slot 2): one new site on
    // the surviving cloudlet 1 (0.95 * 0.97 >= 0.9), serving from slot 3.
    EXPECT_EQ(r.remote_migrations, 1u);
    EXPECT_EQ(r.served_slots, 9u);
    EXPECT_EQ(r.outages, 1u);
    EXPECT_EQ(r.recovered_outages, 1u);
    // Service resumed after a gap, so it is a recovered outage, not a
    // seamless failover; and 9/10 delivered exactly meets R_i = 0.9.
    EXPECT_EQ(r.remote_failovers, 0u);
    EXPECT_EQ(r.sla_violations, 0u);
    EXPECT_EQ(r.capacity_violations, 0u);
}

TEST(RecoveryEngine, InstantMigrationIsASeamlessRemoteFailover) {
    const CrashScenario s;
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    cfg.respawn_delay_slots = 0;  // zero spin-up: serves the same slot
    const RecoveryReport r = run_recovery_study(s.instance, s.decisions, s.schedule, cfg);
    EXPECT_EQ(r.served_slots, 10u);
    EXPECT_EQ(r.outages, 0u);
    EXPECT_EQ(r.remote_failovers, 1u);
    EXPECT_EQ(r.sla_violations, 0u);
}

TEST(RecoveryEngine, ReadmitRebuildsThePlacement) {
    const CrashScenario s;
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kReadmit;
    const RecoveryReport r = run_recovery_study(s.instance, s.decisions, s.schedule, cfg);
    EXPECT_EQ(r.readmissions, 1u);
    EXPECT_EQ(r.served_slots, 9u);
    EXPECT_EQ(r.capacity_violations, 0u);
}

TEST(RecoveryEngine, TransientBlipDisruptsWithoutKillingInstances) {
    CrashScenario s;
    FaultEvent blip;
    blip.slot = 3;
    blip.kind = FaultKind::kTransientBlip;
    blip.cloudlet = CloudletId{0};
    s.schedule.events = {blip};
    s.schedule.cloudlet_crashes = 0;
    s.schedule.transient_blips = 1;
    const RecoveryReport r =
        run_recovery_study(s.instance, s.decisions, s.schedule, RecoveryConfig{});
    // One disrupted slot, then service resumes on its own: the instance
    // survived the blip even under kNone.
    EXPECT_EQ(r.transient_blips, 1u);
    EXPECT_EQ(r.instances_lost, 0u);
    EXPECT_EQ(r.served_slots, 9u);
    EXPECT_EQ(r.disrupted_slots, 1u);
    EXPECT_EQ(r.outages, 1u);
    EXPECT_EQ(r.recovered_outages, 1u);
    EXPECT_DOUBLE_EQ(r.mean_time_to_recover(), 1.0);
}

TEST(RecoveryEngine, InstanceCrashTargetsTheAddressedReplica) {
    // Two replicas on cloudlet 0; killing one leaves service untouched.
    const auto inst =
        small_instance({0.98, 0.97}, 10.0, 8, {make_request(0, 0, 0.95, 0, 8, 5.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{0}, 2}})};
    FaultSchedule schedule;
    schedule.events = {instance_crash(3, 0, 0, 1)};
    schedule.instance_crashes = 1;
    const RecoveryReport r =
        run_recovery_study(inst, decisions, schedule, RecoveryConfig{});
    EXPECT_EQ(r.instance_crashes, 1u);
    EXPECT_EQ(r.instances_lost, 1u);
    EXPECT_EQ(r.served_slots, 8u);  // replica 0 keeps serving
    EXPECT_EQ(r.disrupted_slots, 0u);
    // Killing the already-dead replica again is a no-op.
    schedule.events.push_back(instance_crash(5, 0, 0, 1));
    const RecoveryReport r2 =
        run_recovery_study(inst, decisions, schedule, RecoveryConfig{});
    EXPECT_EQ(r2.instance_crashes, 1u);
    // An out-of-range site/replica address is a no-op, not a crash.
    schedule.events.push_back(instance_crash(6, 0, 7, 9));
    EXPECT_NO_THROW(run_recovery_study(inst, decisions, schedule, RecoveryConfig{}));
}

TEST(RecoveryEngine, ShedsLowestPaymentRequestToRecoverHigherPayment) {
    // Cloudlet 1 is completely full with a cheap short request; the
    // expensive request's cloudlet dies for good. Migration sheds the cheap
    // one: it loses 2 slots (of its 4-slot window) so the expensive one can
    // gain 5 — a strict win on both dominance metrics.
    const auto inst = small_instance({0.98, 0.97}, 2.0, 8,
                                     {make_request(0, 1, 0.8, 0, 4, 1.0),
                                      make_request(1, 0, 0.9, 0, 8, 10.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{1}, 1}}),   // "lb": compute 2 = full
        admit(1, {core::Site{CloudletId{0}, 1}})};  // "fw": compute 1
    FaultSchedule schedule;
    schedule.events = {cloudlet_crash(2, 0, 100)};
    schedule.cloudlet_crashes = 1;

    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    const RecoveryReport r = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(r.shed_requests, 1u);
    EXPECT_DOUBLE_EQ(r.shed_revenue, 1.0);
    EXPECT_EQ(r.remote_migrations, 1u);
    EXPECT_EQ(r.capacity_violations, 0u);
    // Request 1: slots 0-1 on cloudlet 0, slot 2 disrupted, 3-7 migrated.
    // Request 0: slots 0-1 served, then shed — its remaining 2 slots still
    // count as disrupted.
    EXPECT_EQ(r.served_slots, 2u + 7u);
    EXPECT_EQ(r.disrupted_slots, 2u + 1u);
    EXPECT_EQ(r.sla_requests, 2u);
    EXPECT_EQ(r.sla_violations, 2u);  // 0.5 < 0.8 and 0.875 < 0.9

    // With shedding disabled the migration has to wait out the victim's
    // window: backoff retries at slots 3 and 5, landing the site only once
    // cloudlet 1 frees up at slot 5.
    cfg.allow_shedding = false;
    const RecoveryReport r2 = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(r2.shed_requests, 0u);
    EXPECT_EQ(r2.remote_migrations, 1u);
    EXPECT_EQ(r2.failed_recoveries, 2u);
    // The cheap request serves its full window; the expensive one resumes
    // at slot 6 after the slot-5 migration's spin-up.
    EXPECT_EQ(r2.served_slots, 4u + 4u);
}

TEST(RecoveryEngine, NeverShedsEqualOrHigherPayment) {
    // Same shape, but the would-be victim pays the same: no shedding.
    const auto inst = small_instance({0.98, 0.97}, 2.0, 8,
                                     {make_request(0, 1, 0.8, 0, 8, 10.0),
                                      make_request(1, 0, 0.9, 0, 8, 10.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{1}, 1}}),
        admit(1, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;
    schedule.events = {cloudlet_crash(2, 0, 100)};
    schedule.cloudlet_crashes = 1;
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    const RecoveryReport r = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(r.shed_requests, 0u);
    EXPECT_EQ(r.remote_migrations, 0u);
}

TEST(RecoveryEngine, RecoveryPoliciesDominateNoneUnderIdenticalFaults) {
    // The acceptance criterion: with identical fault schedules, every
    // recovery policy delivers at least kNone's availability, with zero
    // ledger capacity violations.
    common::Rng rng(507);
    const core::Instance inst = random_instance(rng, 60, 4, 15, 20, 40);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    FaultInjectorConfig faults;
    faults.rack_failure_per_slot = 0.01;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const FaultSchedule schedule =
            generate_fault_schedule(inst, result.decisions, faults, seed);
        RecoveryConfig cfg;
        const RecoveryReport none =
            run_recovery_study(inst, result.decisions, schedule, cfg);
        EXPECT_EQ(none.capacity_violations, 0u);
        for (const RecoveryPolicy policy :
             {RecoveryPolicy::kLocalRespawn, RecoveryPolicy::kRemoteMigrate,
              RecoveryPolicy::kReadmit}) {
            cfg.policy = policy;
            const RecoveryReport r =
                run_recovery_study(inst, result.decisions, schedule, cfg);
            EXPECT_GE(r.availability(), none.availability())
                << to_string(policy) << " seed=" << seed;
            EXPECT_GE(r.mean_delivered(), none.mean_delivered())
                << to_string(policy) << " seed=" << seed;
            EXPECT_EQ(r.capacity_violations, 0u) << to_string(policy);
            EXPECT_EQ(r.request_slots, none.request_slots);
        }
    }
}

TEST(RecoveryEngine, RejectsMismatchedDecisions) {
    const auto inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 1.0)});
    EXPECT_THROW(run_recovery_study(inst, {}, FaultSchedule{}, RecoveryConfig{}),
                 std::invalid_argument);
}

TEST(RecoveryEngine, RejectsOvercommittedSchedules) {
    // A schedule that never fit (capacity 1, compute 2) cannot be replayed
    // into the enforcing ledger.
    const auto inst = small_instance({0.99}, 1.0, 5, {make_request(0, 1, 0.8, 0, 2, 1.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{0}, 1}})};
    EXPECT_THROW(run_recovery_study(inst, decisions, FaultSchedule{}, RecoveryConfig{}),
                 std::invalid_argument);
}

TEST(RecoveryEngine, ValidatesRecoveryConfig) {
    const CrashScenario s;
    RecoveryConfig cfg;
    cfg.max_retries = -1;
    EXPECT_THROW(run_recovery_study(s.instance, s.decisions, s.schedule, cfg),
                 common::ContractViolation);
    cfg = RecoveryConfig{};
    cfg.retry_backoff_slots = 0;
    EXPECT_THROW(run_recovery_study(s.instance, s.decisions, s.schedule, cfg),
                 common::ContractViolation);
}

TEST(RecoveryStudy, ReplicationsAggregateAndValidate) {
    common::Rng rng(509);
    const core::Instance inst = random_instance(rng, 40, 3, 12);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    RecoveryStudyConfig cfg;
    cfg.replications = 3;
    cfg.recovery.policy = RecoveryPolicy::kLocalRespawn;
    const RecoveryStudyOutcome out =
        run_recovery_replications(inst, result.decisions, cfg);
    EXPECT_EQ(out.availability.count(), 3u);
    EXPECT_GT(out.total.request_slots, 0u);
    EXPECT_EQ(out.total.capacity_violations, 0u);
    // Same config, same outcome, same checksum.
    const RecoveryStudyOutcome again =
        run_recovery_replications(inst, result.decisions, cfg);
    EXPECT_EQ(recovery_metrics_checksum(out), recovery_metrics_checksum(again));
    // Different master seed, different faults.
    cfg.master_seed ^= 1;
    const RecoveryStudyOutcome other =
        run_recovery_replications(inst, result.decisions, cfg);
    EXPECT_NE(recovery_metrics_checksum(out), recovery_metrics_checksum(other));

    cfg.replications = 0;
    EXPECT_THROW(run_recovery_replications(inst, result.decisions, cfg),
                 common::ContractViolation);
}

TEST(RecoveryStudy, PluggableInjectorIsUsed) {
    const CrashScenario s;
    RecoveryStudyConfig cfg;
    cfg.replications = 2;
    cfg.recovery.policy = RecoveryPolicy::kLocalRespawn;
    cfg.injector = [&s](const core::Instance&, const std::vector<core::Decision>&,
                        std::uint64_t) { return s.schedule; };
    const RecoveryStudyOutcome out =
        run_recovery_replications(s.instance, s.decisions, cfg);
    EXPECT_EQ(out.total.cloudlet_crashes, 2u);  // one per replication
    EXPECT_EQ(out.total.local_respawns, 2u);
}

}  // namespace
}  // namespace vnfr::sim
