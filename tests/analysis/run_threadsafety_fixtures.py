#!/usr/bin/env python3
"""Fixture test for the Clang thread-safety analysis layer.

Compiles the fixtures under tests/analysis/fixtures/threadsafety/ with
``clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety``:

  ts_pos.cpp   must be REJECTED, with thread-safety diagnostics — proves
               the annotations in common/{annotations,mutex}.hpp are live
               and the analysis actually fires;
  ts_neg.cpp   must be ACCEPTED with no warnings — proves the idiomatic
               locking patterns the tree uses are annotation-clean.

Exits 77 (ctest SKIP_RETURN_CODE) when no clang++ is available: the
container image is GCC-only, where the annotation macros expand to
nothing; the CI ``analysis`` job provides clang and runs this for real.

Usage: run_threadsafety_fixtures.py <repo-root>
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]


def find_clang() -> str | None:
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compile_fixture(clang: str, repo_root: Path, fixture: Path):
    cmd = [clang, "-fsyntax-only", "-std=c++20",
           "-Wthread-safety", "-Werror=thread-safety",
           "-I", str(repo_root / "src"), str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = Path(argv[1]).resolve()
    fixture_dir = repo_root / "tests" / "analysis" / "fixtures" / "threadsafety"

    clang = find_clang()
    if clang is None:
        print("run_threadsafety_fixtures: no clang++ on PATH; skipping "
              "(the CI analysis job runs this with clang)")
        return 77

    errors: list[str] = []

    rc, stderr = compile_fixture(clang, repo_root, fixture_dir / "ts_pos.cpp")
    if rc == 0:
        errors.append("ts_pos.cpp compiled cleanly; the thread-safety "
                      "analysis did not fire on known violations")
    elif "-Wthread-safety" not in stderr and "thread safety" not in stderr:
        errors.append("ts_pos.cpp was rejected, but not by thread-safety "
                      f"diagnostics:\n{stderr}")
    else:
        diags = stderr.count("error:")
        print(f"ts_pos.cpp: rejected with {diags} thread-safety error(s), "
              "as expected")

    rc, stderr = compile_fixture(clang, repo_root, fixture_dir / "ts_neg.cpp")
    if rc != 0:
        errors.append(f"ts_neg.cpp failed to compile:\n{stderr}")
    elif stderr.strip():
        errors.append(f"ts_neg.cpp compiled with warnings:\n{stderr}")
    else:
        print("ts_neg.cpp: accepted cleanly, as expected")

    for e in errors:
        print(f"FAIL: {e}")
    if errors:
        return 1
    print("run_threadsafety_fixtures: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
