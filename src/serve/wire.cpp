#include "serve/wire.hpp"

#include <array>
#include <bit>
#include <cerrno>

#include "serve/vfs.hpp"

namespace vnfr::serve {

namespace {

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial 0xEDB88320,
/// built once at static-init time.
std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
    const auto& table = crc_table();
    std::uint32_t c = seed ^ 0xFFFFFFFFU;
    for (const char ch : data) {
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFU;
}

void WireWriter::put_u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void WireWriter::put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
}

void WireWriter::put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
    }
}

void WireWriter::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void WireWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::put_bytes(std::string_view bytes) { buffer_.append(bytes); }

void WireReader::fail(const std::string& what) const {
    throw CorruptStateError(label_, offset(), what);
}

std::string_view WireReader::get_bytes(std::size_t n, const char* what) {
    if (remaining() < n) {
        fail(std::string("truncated while reading ") + what + ": need " +
             std::to_string(n) + " bytes, have " + std::to_string(remaining()));
    }
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
}

std::uint8_t WireReader::get_u8(const char* what) {
    return static_cast<std::uint8_t>(get_bytes(1, what)[0]);
}

std::uint32_t WireReader::get_u32(const char* what) {
    const std::string_view b = get_bytes(4, what);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
}

std::uint64_t WireReader::get_u64(const char* what) {
    const std::string_view b = get_bytes(8, what);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return v;
}

std::int64_t WireReader::get_i64(const char* what) {
    return static_cast<std::int64_t>(get_u64(what));
}

double WireReader::get_f64(const char* what) {
    return std::bit_cast<double>(get_u64(what));
}

void WireReader::require_end(const char* what) const {
    if (pos_ != data_.size()) {
        throw CorruptStateError(label_, offset(),
                                std::string(what) + ": " + std::to_string(remaining()) +
                                    " trailing bytes after the last field");
    }
}

std::string read_file(Vfs& vfs, const std::string& path) {
    try {
        return vfs.read_file(path);
    } catch (const VfsError& err) {
        if (err.code() == ENOENT) {
            throw CorruptStateError(path, 0, "file does not exist");
        }
        throw;
    }
}

std::string read_file(const std::string& path) {
    return read_file(posix_vfs(), path);
}

void atomic_write_file(Vfs& vfs, const std::string& path, std::string_view bytes) {
    const std::string tmp = path + ".tmp";
    {
        VfsFdGuard fd(vfs, vfs.create_truncate(tmp));
        try {
            vfs.write_all(fd.get(), tmp, bytes);
            vfs.fsync(fd.get(), tmp);
        } catch (const PowerLossInjected&) {
            throw;  // the simulated process is gone; no cleanup runs
        } catch (...) {
            fd.close();
            try {
                vfs.unlink(tmp);
            } catch (const VfsError&) {
                // Best-effort cleanup; the original error matters more.
            }
            throw;
        }
    }
    try {
        vfs.rename(tmp, path);
    } catch (const PowerLossInjected&) {
        throw;
    } catch (...) {
        try {
            vfs.unlink(tmp);
        } catch (const VfsError&) {
            // Best-effort cleanup; the original error matters more.
        }
        throw;
    }
    vfs.fsync_parent_dir(path);
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
    atomic_write_file(posix_vfs(), path, bytes);
}

bool file_exists(Vfs& vfs, const std::string& path) {
    return vfs.file_exists(path);
}

bool file_exists(const std::string& path) {
    return posix_vfs().file_exists(path);
}

}  // namespace vnfr::serve
