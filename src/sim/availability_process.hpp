// Markov up/down failure dynamics for cloudlets and VNF instances.
//
// The per-slot independent sampling in failure_model.hpp measures *steady
// state* availability; real failures are bursty — a component that fails
// stays down for a repair period. This module models each component as a
// two-state Markov chain over slots whose stationary up-probability equals
// the component's reliability r and whose mean repair time is a parameter:
//
//   P(down -> up)  = 1 / mttr_slots
//   P(up -> down)  = (1 - r) / (r * mttr_slots)
//
// so longer repair times mean rarer but longer outages at the same
// long-run availability. This drives the failover accounting in the
// simulator: the paper argues on-site backups recover fast (same cloudlet)
// while off-site backups survive cloudlet outages but fail over remotely.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

/// Markov chain state for every cloudlet plus per-replica instance states
/// of the placements registered with track().
class AvailabilityProcess {
  public:
    /// `cloudlet_mttr` / `instance_mttr` are mean repair times in slots
    /// (>= 1). Components start in steady state (sampled up with
    /// probability r).
    AvailabilityProcess(const core::Instance& instance, double cloudlet_mttr,
                        double instance_mttr, common::Rng rng);

    /// Starts simulating the failures of an admitted placement. Returns a
    /// handle for serving_site().
    std::size_t track(const workload::Request& request, const core::Placement& placement);

    /// Advances every component by one slot.
    void step();

    [[nodiscard]] bool cloudlet_up(CloudletId c) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// The (site, replica) indices of the first replica that can serve
    /// (its cloudlet up and the replica up), or {npos, npos} when the
    /// request is currently disrupted.
    struct ServingReplica {
        std::size_t site{npos};
        std::size_t replica{npos};
        [[nodiscard]] bool valid() const { return site != npos; }
        friend bool operator==(const ServingReplica&, const ServingReplica&) = default;
    };
    [[nodiscard]] ServingReplica serving_replica(std::size_t handle) const;

    /// Cloudlet hosting a tracked placement's site.
    [[nodiscard]] CloudletId site_cloudlet(std::size_t handle, std::size_t site) const;

  private:
    struct Chain {
        bool up{true};
        double p_fail{0};    ///< up -> down
        double p_repair{0};  ///< down -> up
    };
    struct TrackedPlacement {
        std::vector<CloudletId> cloudlets;          ///< per site
        std::vector<std::vector<Chain>> replicas;   ///< per site, per replica
    };

    [[nodiscard]] Chain make_chain(double reliability, double mttr);
    void step_chain(Chain& chain);

    const core::Instance& instance_;
    double cloudlet_mttr_;
    double instance_mttr_;
    common::Rng rng_;
    std::vector<Chain> cloudlets_;
    std::vector<TrackedPlacement> tracked_;
};

}  // namespace vnfr::sim
