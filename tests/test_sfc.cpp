#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "helpers.hpp"
#include "vnf/reliability.hpp"
#include "sfc/chain_reliability.hpp"
#include "sfc/chain_scheduler.hpp"
#include "sfc/chain_workload.hpp"

namespace vnfr::sfc {
namespace {

using vnfr::testing::random_instance;

// ---- chain reliability math ----

TEST(ChainReliability, SingleFunctionMatchesEquation2) {
    const std::vector<double> rels{0.9};
    const std::vector<int> replicas{3};
    EXPECT_NEAR(chain_onsite_availability(0.99, rels, replicas),
                vnf::onsite_availability(0.99, 0.9, 3), 1e-12);
}

TEST(ChainReliability, MultiFunctionProduct) {
    const std::vector<double> rels{0.9, 0.95};
    const std::vector<int> replicas{2, 1};
    const double expected = 0.99 * (1.0 - 0.01) * 0.95;
    EXPECT_NEAR(chain_onsite_availability(0.99, rels, replicas), expected, 1e-12);
}

TEST(ChainReliability, ValidatesInput) {
    const std::vector<double> rels{0.9, 0.95};
    const std::vector<int> wrong_size{1};
    EXPECT_THROW(chain_onsite_availability(0.99, rels, wrong_size), std::invalid_argument);
    const std::vector<int> zero{1, 0};
    EXPECT_THROW(chain_onsite_availability(0.99, rels, zero), std::invalid_argument);
}

TEST(MinChainReplicas, SingleFunctionMatchesEquation3) {
    // Degenerate chain: must agree with the paper's closed-form N_ij.
    for (const double rc : {0.95, 0.99, 0.999}) {
        for (const double rf : {0.5, 0.9, 0.99}) {
            for (const double req : {0.9, 0.94, 0.98}) {
                const std::vector<double> rels{rf};
                const std::vector<double> computes{2.0};
                const auto chain = min_chain_replicas(rc, rels, computes, req);
                const auto single = vnf::min_onsite_replicas(rc, rf, req);
                ASSERT_EQ(chain.has_value(), single.has_value())
                    << rc << ' ' << rf << ' ' << req;
                if (chain) {
                    EXPECT_EQ((*chain)[0], *single);
                }
            }
        }
    }
}

TEST(MinChainReplicas, InfeasibleWhenCloudletTooWeak) {
    const std::vector<double> rels{0.9, 0.9};
    const std::vector<double> computes{1.0, 1.0};
    EXPECT_FALSE(min_chain_replicas(0.95, rels, computes, 0.95).has_value());
    EXPECT_FALSE(min_chain_replicas(0.95, rels, computes, 0.96).has_value());
}

TEST(MinChainReplicas, ResultMeetsRequirementAndIsLocallyMinimal) {
    common::Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 4));
        std::vector<double> rels;
        std::vector<double> computes;
        for (std::size_t i = 0; i < k; ++i) {
            rels.push_back(rng.uniform(0.6, 0.999));
            computes.push_back(static_cast<double>(rng.uniform_int(1, 3)));
        }
        const double rc = rng.uniform(0.95, 0.9999);
        const double req = rng.uniform(0.85, rc * 0.999);
        const auto replicas = min_chain_replicas(rc, rels, computes, req);
        ASSERT_TRUE(replicas.has_value());
        EXPECT_GE(chain_onsite_availability(rc, rels, *replicas), req);
        // Local minimality: removing any replica breaks the requirement.
        auto probe = *replicas;
        for (std::size_t i = 0; i < k; ++i) {
            if (probe[i] <= 1) continue;
            --probe[i];
            EXPECT_LT(chain_onsite_availability(rc, rels, probe), req)
                << "replica " << i << " was removable";
            ++probe[i];
        }
    }
}

// Property sweep: greedy cost vs exhaustive optimum on short chains.
class ChainGreedyQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainGreedyQualityTest, GreedyNearExhaustive) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 19);
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(2, 3));
    std::vector<double> rels;
    std::vector<double> computes;
    for (std::size_t i = 0; i < k; ++i) {
        rels.push_back(rng.uniform(0.7, 0.99));
        computes.push_back(static_cast<double>(rng.uniform_int(1, 3)));
    }
    const double rc = rng.uniform(0.97, 0.9999);
    const double req = rng.uniform(0.9, rc * 0.995);
    const auto greedy = min_chain_replicas(rc, rels, computes, req);
    const auto exact = exhaustive_chain_replicas(rc, rels, computes, req, 6);
    ASSERT_EQ(greedy.has_value(), exact.has_value());
    if (!greedy) return;
    const double greedy_cost = chain_compute(computes, *greedy);
    const double exact_cost = chain_compute(computes, *exact);
    EXPECT_GE(greedy_cost, exact_cost - 1e-12);  // exhaustive is a true lower bound
    // Greedy with trim stays within one replica's cost of optimal.
    EXPECT_LE(greedy_cost, exact_cost + 3.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainGreedyQualityTest, ::testing::Range(0, 25));

TEST(ExhaustiveChainReplicas, GuardsSearchSpace) {
    const std::vector<double> rels(6, 0.9);
    const std::vector<double> computes(6, 1.0);
    EXPECT_THROW(exhaustive_chain_replicas(0.99, rels, computes, 0.9),
                 std::invalid_argument);
}

// ---- chain workload ----

TEST(ChainWorkload, GeneratesValidChains) {
    common::Rng rng(5);
    const auto inst = random_instance(rng, 5, 3, 10);
    ChainWorkloadConfig cfg;
    cfg.horizon = 10;
    cfg.count = 120;
    cfg.duration_max = 6;
    const auto chains = generate_chains(cfg, inst.catalog, rng);
    ASSERT_EQ(chains.size(), 120u);
    TimeSlot prev = 0;
    for (const ChainRequest& r : chains) {
        EXPECT_TRUE(r.fits_horizon(10));
        EXPECT_GE(r.functions.size(), cfg.chain_length_min);
        EXPECT_LE(r.functions.size(), cfg.chain_length_max);
        EXPECT_GT(r.payment, 0.0);
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
        for (const VnfTypeId f : r.functions) {
            EXPECT_LT(f.index(), inst.catalog.size());
        }
    }
}

TEST(ChainWorkload, DistinctFunctionsWhenCatalogAllows) {
    common::Rng rng(6);
    const auto inst = random_instance(rng, 5, 3, 10);  // 10-type catalog
    ChainWorkloadConfig cfg;
    cfg.count = 60;
    const auto chains = generate_chains(cfg, inst.catalog, rng);
    for (const ChainRequest& r : chains) {
        std::set<std::int64_t> unique;
        for (const VnfTypeId f : r.functions) unique.insert(f.value);
        EXPECT_EQ(unique.size(), r.functions.size());
    }
}

TEST(ChainWorkload, Validation) {
    common::Rng rng(7);
    const auto inst = random_instance(rng, 5, 3, 10);
    ChainWorkloadConfig cfg;
    cfg.chain_length_min = 0;
    EXPECT_THROW(generate_chains(cfg, inst.catalog, rng), std::invalid_argument);
    cfg = {};
    cfg.duration_max = cfg.horizon + 1;
    EXPECT_THROW(generate_chains(cfg, inst.catalog, rng), std::invalid_argument);
}

// ---- chain schedulers ----

struct ChainFixture {
    core::Instance instance;
    std::vector<ChainRequest> chains;
};

ChainFixture make_fixture(std::uint64_t seed, std::size_t count, double cap_lo = 20,
                          double cap_hi = 40) {
    common::Rng rng(seed);
    ChainFixture f{random_instance(rng, 5, 4, 12, cap_lo, cap_hi), {}};
    ChainWorkloadConfig cfg;
    cfg.horizon = 12;
    cfg.count = count;
    cfg.duration_max = 6;
    f.chains = generate_chains(cfg, f.instance.catalog, rng);
    return f;
}

TEST(ChainSchedulers, AdmittedChainsMeetRequirement) {
    const ChainFixture f = make_fixture(11, 80);
    ChainPrimalDual pd(f.instance);
    ChainGreedy greedy(f.instance);
    for (ChainScheduler* s : std::initializer_list<ChainScheduler*>{&pd, &greedy}) {
        const ChainScheduleResult result = run_chains(f.instance, f.chains, *s);
        for (std::size_t i = 0; i < result.decisions.size(); ++i) {
            const ChainDecision& d = result.decisions[i];
            if (!d.admitted) continue;
            std::vector<double> rels;
            for (const VnfTypeId fn : f.chains[i].functions) {
                rels.push_back(f.instance.catalog.reliability(fn));
            }
            EXPECT_GE(
                chain_onsite_availability(
                    f.instance.network.cloudlet(d.placement.cloudlet).reliability, rels,
                    d.placement.replicas),
                f.chains[i].requirement - 1e-12)
                << s->name();
        }
    }
}

TEST(ChainSchedulers, NeverViolateCapacity) {
    const ChainFixture f = make_fixture(13, 150, 10, 20);
    ChainPrimalDual pd(f.instance);
    ChainGreedy greedy(f.instance);
    EXPECT_LE(run_chains(f.instance, f.chains, pd).max_load_factor, 1.0 + 1e-9);
    EXPECT_LE(run_chains(f.instance, f.chains, greedy).max_load_factor, 1.0 + 1e-9);
}

TEST(ChainSchedulers, RevenueMatchesAdmissions) {
    const ChainFixture f = make_fixture(17, 60);
    ChainPrimalDual pd(f.instance);
    const ChainScheduleResult result = run_chains(f.instance, f.chains, pd);
    double expected = 0.0;
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        if (result.decisions[i].admitted) expected += f.chains[i].payment;
    }
    EXPECT_NEAR(result.revenue, expected, 1e-9);
}

TEST(ChainSchedulers, GreedyPicksMostReliableCloudlet) {
    const ChainFixture f = make_fixture(19, 1);
    ChainGreedy greedy(f.instance);
    const ChainScheduleResult result = run_chains(f.instance, f.chains, greedy);
    if (result.admitted == 1) {
        double best_rel = 0.0;
        for (const edge::Cloudlet& c : f.instance.network.cloudlets()) {
            best_rel = std::max(best_rel, c.reliability);
        }
        EXPECT_DOUBLE_EQ(
            f.instance.network.cloudlet(result.decisions[0].placement.cloudlet).reliability,
            best_rel);
    }
}

TEST(ChainSchedulers, PrimalDualRejectsOncePriced) {
    // Saturate a tiny system; the dual prices must eventually reject.
    const ChainFixture f = make_fixture(23, 300, 8, 12);
    ChainPrimalDual pd(f.instance);
    const ChainScheduleResult result = run_chains(f.instance, f.chains, pd);
    EXPECT_LT(result.admitted, f.chains.size());
    EXPECT_GT(result.admitted, 0u);
}

TEST(ChainSchedulers, DeterministicAcrossRuns) {
    const ChainFixture f = make_fixture(29, 80);
    ChainPrimalDual a(f.instance);
    ChainPrimalDual b(f.instance);
    const ChainScheduleResult ra = run_chains(f.instance, f.chains, a);
    const ChainScheduleResult rb = run_chains(f.instance, f.chains, b);
    EXPECT_DOUBLE_EQ(ra.revenue, rb.revenue);
    EXPECT_EQ(ra.admitted, rb.admitted);
}

TEST(ChainSchedulers, ConfigValidation) {
    const ChainFixture f = make_fixture(31, 1);
    EXPECT_THROW(ChainPrimalDual(f.instance, {.dual_capacity_scale = -2.0}),
                 std::invalid_argument);
    EXPECT_EQ(ChainPrimalDual(f.instance).name(), "chain-primal-dual");
    EXPECT_EQ(ChainGreedy(f.instance).name(), "chain-greedy");
}

}  // namespace
}  // namespace vnfr::sfc
