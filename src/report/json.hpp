// Minimal JSON emission for machine-readable bench artifacts
// (BENCH_*.json). Build a JsonValue tree, dump() it; object keys keep
// insertion order so emitted files diff cleanly run-to-run.
//
// Writing only — the repo consumes its own artifacts with external tools
// (jq, CI), never parses JSON back.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace vnfr::report {

class JsonValue {
  public:
    using Array = std::vector<JsonValue>;
    using Member = std::pair<std::string, JsonValue>;
    using Object = std::vector<Member>;

    /// null by default.
    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(std::int64_t i) : value_(i) {}
    JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
    JsonValue(std::uint64_t u);
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}

    static JsonValue object();
    static JsonValue array();

    /// Appends a member to an object (duplicate keys are the caller's
    /// problem); throws std::logic_error when this is not an object.
    /// Returns *this for chaining.
    JsonValue& set(std::string key, JsonValue value);

    /// Appends to an array; throws std::logic_error when not an array.
    JsonValue& push(JsonValue value);

    [[nodiscard]] bool is_object() const;
    [[nodiscard]] bool is_array() const;

    /// Serializes with `indent` spaces per level (0 = compact single line).
    /// Doubles print with round-trip precision; non-finite doubles emit
    /// null (JSON has no NaN/Inf).
    [[nodiscard]] std::string dump(int indent = 2) const;

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array, Object>
        value_;
};

/// Escapes a string for embedding in JSON (quotes not included).
std::string json_escape(const std::string& s);

/// "0x%016x" rendering of a 64-bit checksum/digest — JSON numbers cannot
/// hold them losslessly, so artifacts carry them as hex strings.
std::string hex_u64(std::uint64_t v);

}  // namespace vnfr::report
