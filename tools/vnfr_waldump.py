#!/usr/bin/env python3
"""Offline inspector for vnfr admission-controller WAL files.

Usage: vnfr_waldump.py [--recover] [--quiet] [--json] <wal-file>...
       vnfr_waldump.py --self-test

Prints the 32-byte header (magic, version, generation, config digest,
header CRC), then one line per framed record: file offset, payload
length, stream seq, kind, CRC status, and a decoded summary of the
request and its outcome. The framing and payload layout mirror
src/serve/wal.{hpp,cpp}:

    header:  "VNFRWAL1" | u32 version | u64 generation
             | u64 config digest | u32 CRC(first 28 bytes)
    record:  u32 payload length | payload | u32 CRC(payload)

all little-endian; the CRC is the reflected IEEE CRC-32 (zlib), so
binascii.crc32 reads the real files byte-for-byte.

Default mode is strict: the first inconsistency is flagged with its file
offset and the tool exits 1. With --recover, a final record that is
incomplete or CRC-broken *and* touches end-of-file is reported as a torn
tail (the only state a crash can produce) and the exit stays 0 — the
same policy as WalReadMode::kRecover.

With --json, one JSON document is printed to stdout instead of the text
dump: a `files` array with per-file header fields, records (omitted
under --quiet), torn-tail accounting, and — for corrupt files — the
error offset; plus a top-level `ok`. The exit status is unchanged, so
CI can both gate on it and archive the document.

--self-test crafts WALs in memory (clean, torn-tail, mid-file
corruption) and checks the parser against them; no files are read.
"""

from __future__ import annotations

import argparse
import binascii
import json
import struct
import sys
from dataclasses import dataclass, field
from pathlib import Path

MAGIC = b"VNFRWAL1"
WAL_VERSION = 1
HEADER_SIZE = 8 + 4 + 8 + 8 + 4
MAX_RECORD_BYTES = 1 << 20

KIND_NAMES = {1: "decision", 2: "shed"}
REJECT_REASONS = {0: "none", 1: "infeasible", 2: "priced-out", 3: "no-capacity"}


def crc32(data: bytes) -> int:
    return binascii.crc32(data) & 0xFFFFFFFF


class WalError(Exception):
    """Corruption with a file offset, mirroring CorruptStateError."""

    def __init__(self, offset: int, what: str):
        super().__init__(f"offset {offset}: {what}")
        self.offset = offset
        self.what = what


@dataclass
class Record:
    offset: int            # of the u32 length prefix
    payload_len: int
    seq: int
    kind: int
    summary: str


@dataclass
class Dump:
    generation: int = 0
    config_digest: int = 0
    records: list[Record] = field(default_factory=list)
    torn_tail_bytes: int = 0
    torn_tail_records: int = 0
    valid_size: int = HEADER_SIZE


class Reader:
    def __init__(self, buf: bytes, base: int):
        self.buf = buf
        self.pos = 0
        self.base = base  # file offset of buf[0], for error reporting

    def take(self, n: int, what: str) -> bytes:
        if len(self.buf) - self.pos < n:
            raise WalError(self.base + self.pos, f"truncated while reading {what}")
        out = self.buf[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self, what: str) -> int:
        return self.take(1, what)[0]

    def u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return struct.unpack("<Q", self.take(8, what))[0]

    def i64(self, what: str) -> int:
        return struct.unpack("<q", self.take(8, what))[0]

    def f64(self, what: str) -> float:
        return struct.unpack("<d", self.take(8, what))[0]


def decode_payload(payload: bytes, base: int) -> tuple[int, int, str]:
    """Returns (kind, seq, one-line summary). Raises WalError on nonsense."""
    r = Reader(payload, base)
    kind = r.u8("record kind")
    if kind not in KIND_NAMES:
        raise WalError(base + r.pos - 1, f"unknown WAL record kind {kind}")
    seq = r.u64("record seq")
    req_id = r.i64("request id")
    vnf = r.i64("request vnf")
    requirement = r.f64("request requirement")
    arrival = r.i64("request arrival")
    duration = r.i64("request duration")
    payment = r.f64("request payment")
    r.i64("request source")
    parts = [f"req {req_id} vnf {vnf} R={requirement:g} "
             f"t=[{arrival},{arrival + duration}) pay={payment:g}"]
    if kind == 1:
        admitted = r.u8("admitted flag")
        if admitted > 1:
            raise WalError(base + r.pos - 1, "admitted flag is neither 0 nor 1")
        reason = r.u8("reject reason")
        if reason not in REJECT_REASONS:
            raise WalError(base + r.pos - 1, "reject reason byte out of range")
        site_count = r.u32("site count")
        if site_count > MAX_RECORD_BYTES // 16:
            raise WalError(base + r.pos - 4, "site count out of range")
        sites = []
        for _ in range(site_count):
            cloudlet = r.i64("site cloudlet")
            replicas = r.i64("site replicas")
            sites.append(f"c{cloudlet}x{replicas}")
        if admitted:
            parts.append("ADMIT [" + " ".join(sites) + "]")
        else:
            parts.append(f"reject ({REJECT_REASONS[reason]})")
    else:
        parts.append("shed (overload)")
    if r.pos != len(payload):
        raise WalError(base + r.pos, "trailing bytes after WAL record payload")
    return kind, seq, " ".join(parts)


def parse_wal(data: bytes, *, recover: bool) -> Dump:
    if len(data) < HEADER_SIZE:
        raise WalError(0, "WAL shorter than its 32-byte header")
    if data[:8] != MAGIC:
        raise WalError(0, "bad magic (not a VNFR WAL)")
    version = struct.unpack_from("<I", data, 8)[0]
    if version != WAL_VERSION:
        raise WalError(8, f"unsupported WAL version {version}")
    dump = Dump()
    dump.generation = struct.unpack_from("<Q", data, 12)[0]
    dump.config_digest = struct.unpack_from("<Q", data, 20)[0]
    header_crc = struct.unpack_from("<I", data, 28)[0]
    if header_crc != crc32(data[:HEADER_SIZE - 4]):
        raise WalError(HEADER_SIZE - 4, "WAL header CRC mismatch")

    pos = HEADER_SIZE
    while pos < len(data):
        start = pos
        length = None
        try:
            if len(data) - pos < 4:
                raise WalError(pos, "truncated record length prefix")
            (length,) = struct.unpack_from("<I", data, pos)
            if length == 0 or length > MAX_RECORD_BYTES:
                raise WalError(pos, f"implausible record length {length}")
            if len(data) - pos - 4 < length + 4:
                raise WalError(pos, "record runs past end of file")
            payload = data[pos + 4:pos + 4 + length]
            (rec_crc,) = struct.unpack_from("<I", data, pos + 4 + length)
            if rec_crc != crc32(payload):
                raise WalError(pos + 4 + length, "record CRC mismatch")
            kind, seq, summary = decode_payload(payload, pos + 4)
        except WalError as err:
            # A busted *final* record reaching EOF is a legal crash state;
            # anything earlier is corruption in both modes. "Implausible
            # length" and payload nonsense still count as torn only when
            # the record frame would extend to (or past) EOF.
            frame_end = (start + 4 + length + 4 if length is not None
                         else len(data))
            touches_eof = frame_end >= len(data)
            if recover and touches_eof:
                dump.torn_tail_bytes = len(data) - start
                dump.torn_tail_records = 1
                dump.valid_size = start
                return dump
            raise err
        dump.records.append(Record(start, length, seq, kind, summary))
        pos += 4 + length + 4
    dump.valid_size = pos
    return dump


def print_dump(path: str, dump: Dump, *, quiet: bool) -> None:
    print(f"{path}: generation {dump.generation}, "
          f"config digest 0x{dump.config_digest:016x}, header crc ok")
    if not quiet:
        for rec in dump.records:
            print(f"  @{rec.offset:<8} len {rec.payload_len:<5} "
                  f"seq {rec.seq:<6} {KIND_NAMES[rec.kind]:<8} crc ok  "
                  f"{rec.summary}")
    print(f"  {len(dump.records)} record(s), valid prefix {dump.valid_size} bytes"
          + (f", torn tail: {dump.torn_tail_bytes} byte(s) / "
             f"{dump.torn_tail_records} record(s) dropped"
             if dump.torn_tail_bytes else ""))


def dump_as_json(path: str, dump: Dump, *, quiet: bool) -> dict:
    doc = {
        "file": path,
        "ok": True,
        "generation": dump.generation,
        "config_digest": f"0x{dump.config_digest:016x}",
        "record_count": len(dump.records),
        "valid_size": dump.valid_size,
        "torn_tail_bytes": dump.torn_tail_bytes,
        "torn_tail_records": dump.torn_tail_records,
    }
    if not quiet:
        doc["records"] = [
            {
                "offset": rec.offset,
                "payload_len": rec.payload_len,
                "seq": rec.seq,
                "kind": KIND_NAMES[rec.kind],
                "summary": rec.summary,
            }
            for rec in dump.records
        ]
    return doc


# --------------------------------------------------------------------------
# Self-test: craft WALs in memory and check the parser against them.
# --------------------------------------------------------------------------

def _encode_payload(kind: int, seq: int, *, admitted: bool = True,
                    reason: int = 0, sites: list[tuple[int, int]] | None = None,
                    req_id: int = 7) -> bytes:
    body = struct.pack("<BQ", kind, seq)
    body += struct.pack("<qqdqqdq", req_id, 3, 0.99, 5, 4, 12.5, 2)
    if kind == 1:
        body += struct.pack("<BBI", 1 if admitted else 0, reason,
                            len(sites or []))
        for cloudlet, replicas in sites or []:
            body += struct.pack("<qq", cloudlet, replicas)
    return body


def _frame(payload: bytes) -> bytes:
    return struct.pack("<I", len(payload)) + payload + struct.pack("<I", crc32(payload))


def _header(generation: int = 0, digest: int = 0xDEAD) -> bytes:
    head = MAGIC + struct.pack("<IQQ", WAL_VERSION, generation, digest)
    return head + struct.pack("<I", crc32(head))


def self_test() -> int:
    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    clean = _header(generation=3) + \
        _frame(_encode_payload(1, 0, admitted=True, sites=[(2, 3)])) + \
        _frame(_encode_payload(1, 1, admitted=False, reason=2)) + \
        _frame(_encode_payload(2, 2))
    d = parse_wal(clean, recover=False)
    check(d.generation == 3 and len(d.records) == 3, "clean WAL parses")
    check(d.records[0].offset == HEADER_SIZE, "first record offset")
    check(d.records[2].kind == 2, "shed record kind")
    check("ADMIT" in d.records[0].summary, "admit summary")
    check("priced-out" in d.records[1].summary, "reject reason name")
    check(d.valid_size == len(clean), "valid prefix spans the file")

    torn = clean[:-5]  # cut into the final record's CRC
    try:
        parse_wal(torn, recover=False)
        check(False, "strict mode rejects a torn tail")
    except WalError as err:
        check(err.offset == d.records[2].offset,
              "strict error points at the torn record's frame")
    d2 = parse_wal(torn, recover=True)
    check(len(d2.records) == 2 and d2.torn_tail_records == 1,
          "recover mode drops exactly the torn record")
    check(d2.torn_tail_bytes == len(torn) - d2.valid_size,
          "torn byte count matches the invalid suffix")

    # The JSON shape must round-trip and agree with the parsed dump.
    j = json.loads(json.dumps(dump_as_json("x.log", d2, quiet=False)))
    check(j["ok"] and j["record_count"] == 2 and len(j["records"]) == 2,
          "json dump mirrors the parsed records")
    check(j["torn_tail_bytes"] == d2.torn_tail_bytes and
          j["valid_size"] == d2.valid_size, "json torn-tail accounting")
    check("records" not in dump_as_json("x.log", d2, quiet=True),
          "json --quiet omits per-record rows")

    # Flip a byte inside the FIRST record: corruption before the tail must
    # throw in both modes (it cannot be a crash artifact).
    mid = bytearray(clean)
    mid[HEADER_SIZE + 6] ^= 0xFF
    for recover in (False, True):
        try:
            parse_wal(bytes(mid), recover=recover)
            check(False, f"mid-file corruption throws (recover={recover})")
        except WalError:
            pass

    bad_head = bytearray(clean)
    bad_head[9] ^= 0x01  # version field
    try:
        parse_wal(bytes(bad_head), recover=True)
        check(False, "header mangling is detected")
    except WalError:
        pass

    if failures:
        for f in failures:
            print(f"vnfr_waldump --self-test: FAILED: {f}")
        return 1
    print("vnfr_waldump --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="vnfr_waldump.py",
        description="dump vnfr WAL files (framing, seq/kind, CRC status)")
    parser.add_argument("files", nargs="*", help="WAL files (wal-<gen>.log)")
    parser.add_argument("--recover", action="store_true",
                        help="drop a torn tail like WalReadMode::kRecover "
                             "instead of failing on it")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the per-file summary lines "
                             "(with --json: omit per-record rows)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON document "
                             "instead of the text dump")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the parser against in-memory WALs")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.files:
        parser.error("no WAL files given (or use --self-test)")

    status = 0
    docs: list[dict] = []
    for name in args.files:
        try:
            data = Path(name).read_bytes()
        except OSError as err:
            if args.json:
                docs.append({"file": name, "ok": False, "error": str(err)})
            else:
                print(f"{name}: {err}", file=sys.stderr)
            status = 1
            continue
        try:
            dump = parse_wal(data, recover=args.recover)
        except WalError as err:
            if args.json:
                docs.append({"file": name, "ok": False,
                             "error": err.what, "error_offset": err.offset})
            else:
                print(f"{name}: CORRUPT at {err}", file=sys.stderr)
            status = 1
            continue
        if args.json:
            docs.append(dump_as_json(name, dump, quiet=args.quiet))
        else:
            print_dump(name, dump, quiet=args.quiet)
    if args.json:
        print(json.dumps({"ok": status == 0, "files": docs}, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
