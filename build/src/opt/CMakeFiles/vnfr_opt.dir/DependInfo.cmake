
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/branch_and_bound.cpp" "src/opt/CMakeFiles/vnfr_opt.dir/branch_and_bound.cpp.o" "gcc" "src/opt/CMakeFiles/vnfr_opt.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/opt/lp.cpp" "src/opt/CMakeFiles/vnfr_opt.dir/lp.cpp.o" "gcc" "src/opt/CMakeFiles/vnfr_opt.dir/lp.cpp.o.d"
  "/root/repo/src/opt/presolve.cpp" "src/opt/CMakeFiles/vnfr_opt.dir/presolve.cpp.o" "gcc" "src/opt/CMakeFiles/vnfr_opt.dir/presolve.cpp.o.d"
  "/root/repo/src/opt/simplex.cpp" "src/opt/CMakeFiles/vnfr_opt.dir/simplex.cpp.o" "gcc" "src/opt/CMakeFiles/vnfr_opt.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
