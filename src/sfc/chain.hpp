// EXTENSION (beyond the paper): Service Function Chain requests.
//
// The paper schedules single-VNF requests and cites SFC reliability work
// ([7], [13], [16]) as the wider setting. This module generalizes the
// ON-SITE scheme to chains: a request asks for an ordered set of VNFs that
// must all be functional for the service to work; all functions and their
// replicas are hosted in one cloudlet (so chaining traffic stays local),
// and each function k gets its own replica count n_k.
//
// Chain availability in cloudlet c (independent failures):
//   P = r(c) * prod_k (1 - (1 - r(f_k))^{n_k})
// which degenerates to the paper's Eq. 2 for a 1-function chain.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace vnfr::sfc {

struct ChainTag {};
using ChainId = StrongId<ChainTag>;

struct ChainRequest {
    ChainId id;
    std::vector<VnfTypeId> functions;  ///< the chain, in order; size >= 1
    double requirement{0};             ///< R in (0, 1)
    TimeSlot arrival{0};
    TimeSlot duration{1};
    double payment{0};

    [[nodiscard]] TimeSlot end() const { return arrival + duration; }
    [[nodiscard]] bool covers(TimeSlot t) const { return t >= arrival && t < end(); }
    [[nodiscard]] bool fits_horizon(TimeSlot horizon) const {
        return arrival >= 0 && duration >= 1 && end() <= horizon;
    }
};

/// An admitted chain's allocation: the hosting cloudlet and one replica
/// count per chain position.
struct ChainPlacement {
    ChainId chain;
    CloudletId cloudlet;
    std::vector<int> replicas;  ///< parallel to ChainRequest::functions

    [[nodiscard]] int total_replicas() const {
        int total = 0;
        for (const int n : replicas) total += n;
        return total;
    }
};

struct ChainDecision {
    bool admitted{false};
    ChainPlacement placement;  ///< meaningful only when admitted
};

}  // namespace vnfr::sfc
