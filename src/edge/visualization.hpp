// Graphviz DOT export of topologies and MEC networks, so networks and
// cloudlet placements can be visualized with standard tooling:
//   dot -Kneato -Tpng topology.dot -o topology.png
#pragma once

#include <iosfwd>
#include <string>

#include "edge/mec_network.hpp"
#include "net/graph.hpp"

namespace vnfr::edge {

struct DotOptions {
    std::string graph_name{"vnfr"};
    bool use_coordinates{true};  ///< emit pos="x,y!" from node coordinates
    double coordinate_scale{1.0};
};

/// Writes an undirected DOT graph; node labels are the node names (or ids
/// when unnamed), edge labels the link weights.
void write_dot(std::ostream& os, const net::Graph& graph, const DotOptions& options = {});

/// As above, additionally highlighting cloudlet-hosting APs (doublecircle,
/// labelled with capacity and reliability).
void write_dot(std::ostream& os, const MecNetwork& network, const DotOptions& options = {});

std::string to_dot(const net::Graph& graph, const DotOptions& options = {});
std::string to_dot(const MecNetwork& network, const DotOptions& options = {});

}  // namespace vnfr::edge
