// Primary/standby replication: ship-frame wire format, transport fault
// injection, WAL shipping across rotation, standby tailing and resync,
// promotion from the primary's disk tail, and the failover chaos gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "helpers.hpp"
#include "serve/admission_controller.hpp"
#include "serve/replication/failover.hpp"
#include "serve/replication/failover_chaos.hpp"
#include "serve/replication/ship_transport.hpp"
#include "serve/replication/standby.hpp"
#include "serve/replication/wal_shipper.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve::replication {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

core::Instance replication_instance(std::size_t n) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TimeSlot arrival = static_cast<TimeSlot>((i * 7) / n);
        const TimeSlot duration = 1 + static_cast<TimeSlot>(i % 3);
        const double payment = 1.0 + static_cast<double>((i * 11) % 17);
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2),
                                    0.90 + 0.004 * static_cast<double>(i % 10),
                                    arrival, duration, payment));
    }
    // Tight capacity so admission, rejection and shedding all occur.
    return small_instance({0.98, 0.97, 0.99}, 10.0, 10, std::move(reqs));
}

std::string fresh_work_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

ServeConfig primary_config(const std::string& dir) {
    ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    cfg.retain_wals = true;
    return cfg;
}

ServeConfig standby_config(const std::string& dir) {
    ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    return cfg;
}

/// Drives requests [0, n) with a drain every `drain_every` submits and a
/// replication beat after every step when `shipper`/`standby` are given.
void drive_replicated(AdmissionController& primary,
                      const std::vector<workload::Request>& requests,
                      std::size_t drain_every, WalShipper* shipper,
                      StandbyController* standby) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
        primary.submit(i, requests[i]);
        if ((i + 1) % drain_every == 0) primary.drain();
        if (shipper != nullptr) shipper->pump();
        if (standby != nullptr) standby->poll();
    }
    primary.drain();
    if (shipper != nullptr) shipper->pump();
    if (standby != nullptr) standby->poll();
}

void settle(WalShipper& shipper, StandbyController& standby,
            ShipTransport& transport, int rounds = 10000) {
    for (int i = 0; i < rounds; ++i) {
        const std::size_t sent = shipper.pump();
        const std::size_t got = standby.poll();
        if (sent == 0 && got == 0 && transport.in_flight() == 0) return;
    }
    FAIL() << "replication link failed to settle";
}

TEST(ShipFrame, RoundTripsRecordsAndRotate) {
    ShipFrame frame;
    frame.kind = ShipFrameKind::kRecords;
    frame.generation = 7;
    frame.start_offset = 1234;
    frame.record_count = 3;
    frame.payload = "framed-record-bytes";
    const ShipFrame back = decode_ship_frame(encode_ship_frame(frame));
    EXPECT_EQ(back.kind, ShipFrameKind::kRecords);
    EXPECT_EQ(back.generation, 7u);
    EXPECT_EQ(back.start_offset, 1234u);
    EXPECT_EQ(back.record_count, 3u);
    EXPECT_EQ(back.payload, "framed-record-bytes");

    ShipFrame rotate;
    rotate.kind = ShipFrameKind::kRotate;
    rotate.generation = 2;
    rotate.start_offset = 4096;
    const ShipFrame rback = decode_ship_frame(encode_ship_frame(rotate));
    EXPECT_EQ(rback.kind, ShipFrameKind::kRotate);
    EXPECT_EQ(rback.start_offset, 4096u);
}

TEST(ShipFrame, DetectsMangling) {
    ShipFrame frame;
    frame.payload = "payload-bytes";
    std::string bytes = encode_ship_frame(frame);
    // Flip a payload byte: the frame CRC must catch it.
    std::string flipped = bytes;
    flipped[10] = static_cast<char>(flipped[10] ^ 0x40);
    EXPECT_THROW((void)decode_ship_frame(flipped), CorruptStateError);
    // Truncate the tail: short buffer, CRC gone.
    EXPECT_THROW((void)decode_ship_frame(std::string_view(bytes).substr(
                     0, bytes.size() - 5)),
                 CorruptStateError);
    EXPECT_THROW((void)decode_ship_frame(std::string_view("ab")),
                 CorruptStateError);
}

TEST(ShipTransport, BoundedChannelBackpressures) {
    ShipTransport transport(2);
    ShipFrame frame;
    frame.payload = "x";
    EXPECT_TRUE(transport.try_send(frame));
    EXPECT_TRUE(transport.try_send(frame));
    EXPECT_FALSE(transport.try_send(frame));  // full
    EXPECT_EQ(transport.stats().sends_rejected_full, 1u);
    EXPECT_TRUE(transport.try_recv().has_value());
    EXPECT_TRUE(transport.try_send(frame));  // slot freed
}

TEST(ShipTransport, FaultPlanDropsAndReorders) {
    ShipTransport transport(64);
    TransportFaultPlan plan;
    plan.seed = 42;
    plan.drop = 0.25;
    plan.truncate = 0.25;
    plan.duplicate = 0.25;
    plan.reorder = 0.25;
    transport.set_fault_plan(plan);
    ShipFrame frame;
    frame.payload = "some-frame-payload";
    for (int i = 0; i < 40; ++i) (void)transport.try_send(frame);
    // Drain everything (including a possible held-back reorder frame).
    std::size_t received = 0;
    while (transport.try_recv().has_value()) ++received;
    const TransportStats stats = transport.stats();
    EXPECT_GT(stats.frames_dropped, 0u);
    EXPECT_GT(stats.frames_truncated, 0u);
    EXPECT_GT(stats.frames_duplicated, 0u);
    EXPECT_GT(stats.frames_reordered, 0u);
    EXPECT_EQ(received, stats.frames_delivered);
    EXPECT_EQ(transport.in_flight(), 0u);
}

TEST(StandbyReplication, MirrorsPrimaryDigestOverCleanLink) {
    const core::Instance instance = replication_instance(60);
    const std::string pdir = fresh_work_dir("repl_clean_p");
    const std::string sdir = fresh_work_dir("repl_clean_s");
    ShipTransport transport(4);
    AdmissionController primary(instance, core::Scheme::kOnsite,
                                primary_config(pdir));
    StandbyController standby(instance, core::Scheme::kOnsite,
                              standby_config(sdir), transport);
    WalShipper shipper(primary, pdir, transport);
    drive_replicated(primary, instance.requests, 5, &shipper, &standby);
    settle(shipper, standby, transport);

    // Every durable record crossed: the standby's state is bit-identical.
    EXPECT_EQ(standby.controller().state_digest(), primary.state_digest());
    const WalPosition pos = primary.wal_position();
    const ShipAck mark = standby.watermark();
    EXPECT_EQ(mark.generation, pos.generation);
    EXPECT_EQ(mark.next_offset, pos.durable_bytes);
    EXPECT_FALSE(mark.resync);
    EXPECT_GT(standby.stats().rotates_applied, 0u);  // rotation was crossed
    EXPECT_GT(shipper.stats().generations_released, 0u);  // retention bounded
    // Released generations are really gone from the primary's directory.
    EXPECT_FALSE(file_exists(pdir + "/wal-0.log"));
}

TEST(StandbyReplication, ConvergesOverFaultyLink) {
    const core::Instance instance = replication_instance(60);
    const std::string pdir = fresh_work_dir("repl_faulty_p");
    const std::string sdir = fresh_work_dir("repl_faulty_s");
    ShipTransport transport(4);
    TransportFaultPlan plan;
    plan.seed = 7;
    plan.drop = 0.15;
    plan.truncate = 0.1;
    plan.duplicate = 0.1;
    plan.reorder = 0.1;
    transport.set_fault_plan(plan);
    AdmissionController primary(instance, core::Scheme::kOffsite,
                                primary_config(pdir));
    StandbyController standby(instance, core::Scheme::kOffsite,
                              standby_config(sdir), transport);
    WalShipper shipper(primary, pdir, transport);
    drive_replicated(primary, instance.requests, 5, &shipper, &standby);
    settle(shipper, standby, transport);

    EXPECT_EQ(standby.controller().state_digest(), primary.state_digest());
    const StandbyStats stats = standby.stats();
    // The adversarial paths actually ran, and every lost frame was healed
    // by a resync retransmit, not silently skipped.
    EXPECT_GT(stats.frames_corrupt + stats.frames_gap + stats.frames_stale, 0u);
    EXPECT_GT(shipper.stats().resync_rewinds, 0u);
    EXPECT_FALSE(standby.watermark().resync);
}

TEST(StandbyReplication, RoleEnforcement) {
    const core::Instance instance = replication_instance(4);
    const std::string pdir = fresh_work_dir("repl_role_p");
    const std::string sdir = fresh_work_dir("repl_role_s");
    ShipTransport transport(4);
    AdmissionController primary(instance, core::Scheme::kOnsite,
                                primary_config(pdir));
    StandbyController standby(instance, core::Scheme::kOnsite,
                              standby_config(sdir), transport);
    EXPECT_EQ(standby.controller().role(), ControllerRole::kStandby);
    EXPECT_THROW(standby.controller().submit(0, instance.requests[0]),
                 std::logic_error);
    EXPECT_THROW((void)standby.controller().drain(), std::logic_error);
    WalRecord rec;
    rec.kind = WalRecordKind::kShed;
    rec.seq = 0;
    rec.request = instance.requests[0];
    EXPECT_THROW((void)primary.apply_replicated(rec), std::logic_error);

    // Applying the same record twice: the covered set absorbs the second.
    EXPECT_TRUE(standby.controller().apply_replicated(rec));
    EXPECT_FALSE(standby.controller().apply_replicated(rec));

    standby.controller().checkpoint();
    standby.controller().mark_promoted();
    EXPECT_EQ(standby.controller().role(), ControllerRole::kPrimary);
    EXPECT_NO_THROW(standby.controller().submit(1, instance.requests[1]));
}

TEST(StandbyReplication, ReleasedGenerationIsTypedGapNotSilentSkip) {
    const core::Instance instance = replication_instance(40);
    const std::string pdir = fresh_work_dir("repl_gap_p");
    const std::string sdir = fresh_work_dir("repl_gap_s");
    ShipTransport transport(8);
    AdmissionController primary(instance, core::Scheme::kOnsite,
                                primary_config(pdir));
    StandbyController standby(instance, core::Scheme::kOnsite,
                              standby_config(sdir), transport);
    WalShipper shipper(primary, pdir, transport);
    // Rotate at least once before the shipper ever runs...
    drive_replicated(primary, instance.requests, 5, nullptr, nullptr);
    ASSERT_GT(primary.wal_position().generation, 0u);
    ASSERT_TRUE(file_exists(pdir + "/wal-0.log"));
    // ...then lose a retained generation the tailer still needs.
    ::unlink((pdir + "/wal-0.log").c_str());
    EXPECT_THROW((void)shipper.pump(), ReplicationGapError);

    // Promotion over the same hole must fail loudly too.
    FailoverCoordinator coordinator(pdir);
    EXPECT_THROW((void)coordinator.promote(standby), ReplicationGapError);
}

TEST(StandbyReplication, PromotionClosesStandbyLagFromDisk) {
    const core::Instance instance = replication_instance(60);
    const std::string pdir = fresh_work_dir("repl_lag_p");
    const std::string sdir = fresh_work_dir("repl_lag_s");
    // Baseline: uninterrupted single-node run.
    const std::string bdir = fresh_work_dir("repl_lag_b");
    std::uint64_t baseline_digest = 0;
    {
        AdmissionController baseline(instance, core::Scheme::kOnsite,
                                     standby_config(bdir));
        for (std::size_t i = 0; i < instance.requests.size(); ++i) {
            baseline.submit(i, instance.requests[i]);
            if ((i + 1) % 5 == 0) baseline.drain();
        }
        baseline.drain();
        baseline_digest = baseline.state_digest();
    }
    ShipTransport transport(4);
    AdmissionController primary(instance, core::Scheme::kOnsite,
                                primary_config(pdir));
    StandbyController standby(instance, core::Scheme::kOnsite,
                              standby_config(sdir), transport);
    WalShipper shipper(primary, pdir, transport);
    // Ship only the first half of the trace, then stop replicating: the
    // standby lags by everything the shipper never sent.
    for (std::size_t i = 0; i < instance.requests.size(); ++i) {
        primary.submit(i, instance.requests[i]);
        if ((i + 1) % 5 == 0) primary.drain();
        if (i < instance.requests.size() / 2) {
            shipper.pump();
            standby.poll();
        }
    }
    primary.drain();
    const std::uint64_t applied_before = standby.stats().records_applied;
    const std::uint64_t primary_digest = primary.state_digest();

    // "Kill" the primary (stop using it) and promote from its disk tail.
    FailoverCoordinator coordinator(pdir);
    const PromotionReport report = coordinator.promote(standby);
    EXPECT_GT(report.disk_records_applied, 0u);  // lag really was closed
    EXPECT_EQ(applied_before + report.disk_records_applied,
              standby.controller().metrics().processed +
                  standby.controller().metrics().shed);
    EXPECT_EQ(report.promoted_digest, primary_digest);
    EXPECT_EQ(report.promoted_digest, baseline_digest);
    EXPECT_EQ(standby.controller().role(), ControllerRole::kPrimary);
}

TEST(RecoveryStats, SurfacesTornTailBytes) {
    const core::Instance instance = replication_instance(30);
    const std::string dir = fresh_work_dir("repl_torn");
    ServeConfig cfg = standby_config(dir);
    cfg.checkpoint_every = 100;  // keep everything in one generation
    {
        AdmissionController controller(instance, core::Scheme::kOnsite, cfg);
        for (std::size_t i = 0; i < 12; ++i) {
            controller.submit(i, instance.requests[i]);
        }
        controller.drain();
    }
    // Tear a few bytes off the WAL tail, as a mid-append crash would.
    const std::string wal = dir + "/wal-0.log";
    ASSERT_TRUE(file_exists(wal));
    const std::uint64_t size = std::filesystem::file_size(wal);
    ASSERT_EQ(::truncate(wal.c_str(), static_cast<off_t>(size - 5)), 0);

    AdmissionController revived(instance, core::Scheme::kOnsite, cfg);
    const RecoveryStats stats = revived.recovery_stats();
    EXPECT_TRUE(stats.recovered_wal);
    // The cut landed inside the last record: recovery reports the whole
    // fragment (record bytes minus the 5 we removed) as discarded.
    EXPECT_GT(stats.torn_tail_bytes, 0u);
    EXPECT_EQ(stats.torn_tail_records, 1u);
    EXPECT_GT(stats.wal_records_replayed, 0u);
}

TEST(CheckpointCrash, BothRotationStagesAreRecoverable) {
    const core::Instance instance = replication_instance(40);
    for (const int stage : {1, 2}) {
        const std::string dir =
            fresh_work_dir("repl_ckpt_stage" + std::to_string(stage));
        ServeConfig cfg = standby_config(dir);
        cfg.retain_wals = true;
        std::uint64_t baseline_digest = 0;
        {
            const std::string bdir =
                fresh_work_dir("repl_ckpt_base" + std::to_string(stage));
            ServeConfig bcfg = standby_config(bdir);
            AdmissionController baseline(instance, core::Scheme::kOnsite, bcfg);
            for (std::size_t i = 0; i < instance.requests.size(); ++i) {
                baseline.submit(i, instance.requests[i]);
                if ((i + 1) % 5 == 0) baseline.drain();
            }
            baseline.drain();
            baseline_digest = baseline.state_digest();
        }
        std::size_t submitted = 0;
        bool crashed = false;
        {
            AdmissionController victim(instance, core::Scheme::kOnsite, cfg);
            victim.crash_at_checkpoint_stage(stage);
            try {
                for (std::size_t i = 0; i < instance.requests.size(); ++i) {
                    submitted = i;
                    victim.submit(i, instance.requests[i]);
                    submitted = i + 1;
                    if ((i + 1) % 5 == 0) victim.drain();
                }
                victim.drain();
            } catch (const CrashInjected&) {
                crashed = true;
            }
        }
        ASSERT_TRUE(crashed) << "stage " << stage;
        AdmissionController revived(instance, core::Scheme::kOnsite, cfg);
        for (std::uint64_t i = revived.resume_cursor(); i < submitted; ++i) {
            revived.submit(i, instance.requests[static_cast<std::size_t>(i)]);
        }
        revived.drain();
        for (std::size_t i = submitted; i < instance.requests.size(); ++i) {
            revived.submit(i, instance.requests[i]);
            if ((i + 1) % 5 == 0) revived.drain();
        }
        revived.drain();
        EXPECT_EQ(revived.state_digest(), baseline_digest) << "stage " << stage;
    }
}

TEST(RotationRace, TailerObservesGaplessStreamAcrossRotations) {
    // Interleave rotation-heavy primary progress with a lagging tailer at
    // several cadences: the standby must see every record exactly once
    // and in order (its applied count tracks the primary's outcomes).
    const core::Instance instance = replication_instance(60);
    for (const std::size_t cadence : {1UL, 3UL, 7UL}) {
        const std::string pdir =
            fresh_work_dir("repl_race_p" + std::to_string(cadence));
        const std::string sdir =
            fresh_work_dir("repl_race_s" + std::to_string(cadence));
        ShipTransport transport(4);
        ServeConfig pcfg = primary_config(pdir);
        pcfg.checkpoint_every = 4;  // rotate constantly
        AdmissionController primary(instance, core::Scheme::kOnsite, pcfg);
        StandbyController standby(instance, core::Scheme::kOnsite,
                                  standby_config(sdir), transport);
        WalShipper shipper(primary, pdir, transport);
        std::size_t steps = 0;
        for (std::size_t i = 0; i < instance.requests.size(); ++i) {
            primary.submit(i, instance.requests[i]);
            if ((i + 1) % 5 == 0) primary.drain();
            if (++steps % cadence == 0) {
                shipper.pump();
                standby.poll();
            }
        }
        primary.drain();
        settle(shipper, standby, transport);
        const ServeMetrics pm = primary.metrics();
        const ServeMetrics sm = standby.controller().metrics();
        EXPECT_EQ(sm.processed + sm.shed, pm.processed + pm.shed)
            << "cadence " << cadence;
        EXPECT_EQ(standby.controller().state_digest(), primary.state_digest())
            << "cadence " << cadence;
        EXPECT_GT(standby.stats().rotates_applied, 2u) << "cadence " << cadence;
        EXPECT_EQ(standby.stats().frames_gap, 0u) << "clean link has no gaps";
    }
}

TEST(RotationRace, ConcurrentTailerThreadStaysGapless) {
    // A real second thread tails the WAL while the primary decides and
    // rotates — the TSan job proves the locking, this gate proves the
    // stream: gapless, in-order, digest-identical at quiescence.
    const core::Instance instance = replication_instance(80);
    const std::string pdir = fresh_work_dir("repl_thread_p");
    const std::string sdir = fresh_work_dir("repl_thread_s");
    ShipTransport transport(8);
    ServeConfig pcfg = primary_config(pdir);
    pcfg.checkpoint_every = 4;
    AdmissionController primary(instance, core::Scheme::kOnsite, pcfg);
    StandbyController standby(instance, core::Scheme::kOnsite,
                              standby_config(sdir), transport);
    WalShipper shipper(primary, pdir, transport);
    std::atomic<bool> done{false};
    std::thread tailer([&] {
        while (!done.load(std::memory_order_acquire)) {
            shipper.pump();
            standby.poll();
        }
    });
    for (std::size_t i = 0; i < instance.requests.size(); ++i) {
        primary.submit(i, instance.requests[i]);
        if ((i + 1) % 5 == 0) primary.drain();
    }
    primary.drain();
    done.store(true, std::memory_order_release);
    tailer.join();
    settle(shipper, standby, transport);
    EXPECT_EQ(standby.controller().state_digest(), primary.state_digest());
    EXPECT_EQ(standby.stats().frames_gap, 0u);
    EXPECT_EQ(standby.stats().frames_corrupt, 0u);
}

TEST(FailoverChaos, GatePassesOnBothSchemesWithLag) {
    const core::Instance instance = replication_instance(60);
    for (const core::Scheme scheme :
         {core::Scheme::kOnsite, core::Scheme::kOffsite}) {
        for (const std::size_t lag : {1UL, 4UL}) {
            FailoverChaosConfig cfg;
            cfg.scheme = scheme;
            cfg.master_seed = 0xFEEDBEEFull;
            cfg.kill_points = 6;
            cfg.checkpoint_every = 8;
            cfg.queue_capacity = 4;
            cfg.group_commit = 2;
            cfg.ship_every = lag;
            cfg.work_dir = fresh_work_dir(
                "failover_chaos_" +
                std::to_string(static_cast<int>(scheme)) + "_" +
                std::to_string(lag));
            const FailoverChaosResult result =
                run_failover_chaos_study(instance, cfg);
            EXPECT_TRUE(result.ok())
                << "scheme " << static_cast<int>(scheme) << " lag " << lag
                << ": failed " << result.failed_trials << "/"
                << result.trials.size();
            ASSERT_EQ(result.trials.size(), 6u);
            std::size_t rotation_kills = 0;
            std::size_t faulty = 0;
            for (const FailoverTrial& trial : result.trials) {
                EXPECT_TRUE(trial.crashed);
                if (trial.checkpoint_crash_stage != 0) ++rotation_kills;
                if (trial.faulty_transport) ++faulty;
            }
            EXPECT_GT(rotation_kills, 0u);
            EXPECT_GT(faulty, 0u);
            EXPECT_GT(result.total_disk_records_applied, 0u)
                << "no trial exercised promotion catch-up";
            if (lag == 1) {
                EXPECT_GT(result.transport_totals.frames_dropped, 0u);
            }
        }
    }
}

TEST(FailoverChaos, DegradedPrimaryIsFailedOverLikeADeadOne) {
    const core::Instance instance = replication_instance(60);
    FailoverChaosConfig cfg;
    cfg.scheme = core::Scheme::kOnsite;
    cfg.master_seed = 0xDE6FADEDull;
    cfg.kill_points = 2;
    cfg.degraded_primary_trials = 4;
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    cfg.group_commit = 2;
    cfg.ship_every = 2;
    cfg.work_dir = fresh_work_dir("failover_degraded");
    const FailoverChaosResult result = run_failover_chaos_study(instance, cfg);
    EXPECT_TRUE(result.ok()) << "failed " << result.failed_trials << "/"
                             << result.trials.size();
    ASSERT_EQ(result.trials.size(), 6u);  // 2 kill + 4 degraded-primary
    std::size_t degraded = 0;
    std::size_t faulty = 0;
    for (const FailoverTrial& trial : result.trials) {
        EXPECT_TRUE(trial.crashed);
        EXPECT_TRUE(trial.ok());
        if (trial.degraded) ++degraded;
        if (trial.faulty_transport) ++faulty;
    }
    // A primary whose disk filled mid-stream counts as dead: the standby
    // was promoted from the degraded primary's durable WAL prefix and
    // finished the trace bit-identically in every degraded trial.
    EXPECT_EQ(degraded, 4u);
    EXPECT_GT(faulty, 0u);  // degraded failover also ran over a lossy link
}

}  // namespace
}  // namespace vnfr::serve::replication
