// A day in the life of an edge provider running the on-site scheme.
//
// Synthesizes a Google-cluster-like workload over the Abilene backbone,
// runs Algorithm 1 against the greedy baseline and the offline LP bound,
// and reports revenue, acceptance, utilization, and per-slot load.
//
//   $ ./onsite_provider [num_requests] [seed]
#include <cstdlib>
#include <iostream>

#include "core/greedy.hpp"
#include "core/instance.hpp"
#include "core/offline.hpp"
#include "core/onsite_primal_dual.hpp"
#include "report/table.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

using namespace vnfr;

int main(int argc, char** argv) {
    const std::size_t num_requests =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

    core::InstanceConfig cfg;
    cfg.topology = "abilene";
    cfg.cloudlets.count = 8;
    cfg.cloudlets.capacity_min = 30;
    cfg.cloudlets.capacity_max = 50;
    cfg.workload = workload::google_cluster_like(/*horizon=*/48, num_requests);
    common::Rng rng(seed);
    const core::Instance instance = core::make_instance(cfg, rng);

    std::cout << "MEC: abilene topology, " << instance.network.cloudlet_count()
              << " cloudlets, horizon " << instance.horizon << " slots, "
              << instance.requests.size() << " requests (Google-cluster-like)\n\n";

    report::Table table({"algorithm", "revenue", "accepted", "mean util", "peak load"});
    const auto run = [&](core::OnlineScheduler& scheduler) {
        const sim::SimulationReport report = sim::simulate(instance, scheduler);
        double util = 0.0;
        for (const double u : sim::cloudlet_utilizations(scheduler.ledger())) util += u;
        util /= static_cast<double>(instance.network.cloudlet_count());
        table.add_row({std::string(scheduler.name()),
                       report::format_double(report.schedule.revenue, 1),
                       std::to_string(report.schedule.admitted) + "/" +
                           std::to_string(instance.requests.size()),
                       report::format_double(util, 3),
                       report::format_double(report.schedule.max_load_factor, 3)});
        return report;
    };

    core::OnsitePrimalDual primal_dual(instance);
    core::OnsiteGreedy greedy(instance);
    const sim::SimulationReport pd_report = run(primal_dual);
    run(greedy);

    const core::OfflineResult offline =
        core::solve_offline(instance, core::Scheme::kOnsite, {.run_ilp = false});
    table.add_row({"offline LP bound", report::format_double(offline.lp_bound, 1), "-", "-",
                   "-"});
    std::cout << table.to_text();

    // Busiest slots under the primal-dual schedule.
    std::cout << "\nbusiest slots (algorithm 1):\n";
    report::Table busy({"slot", "arrivals", "active", "mean util"});
    std::vector<sim::SlotRecord> timeline = pd_report.timeline;
    std::sort(timeline.begin(), timeline.end(),
              [](const auto& a, const auto& b) { return a.mean_utilization > b.mean_utilization; });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, timeline.size()); ++i) {
        busy.add_row({std::to_string(timeline[i].slot), std::to_string(timeline[i].arrivals),
                      std::to_string(timeline[i].active_requests),
                      report::format_double(timeline[i].mean_utilization, 3)});
    }
    std::cout << busy.to_text();
    return 0;
}
