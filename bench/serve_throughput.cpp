// Serve-layer throughput bench: admissions/sec of the crash-safe
// admission controller across its performance knobs — WAL group-commit
// size, decide shards/threads, and pipeline producer count.
//
// Two sweeps over the same paper-environment trace:
//
//   * group sweep — a single thread drives the bare controller at
//     group_commit {1, 4, 32}. group 1 is the original per-record
//     write+fdatasync controller; larger groups amortize ONE fdatasync
//     over the batch. This isolates the durability cost.
//   * pipeline sweep — N producer threads feed ShardedAdmissionPipeline
//     (bounded MPSC transport, seq reordering, batched pumps) into a
//     controller with sharded wave-parallel decide, end to end.
//
// Emits BENCH_serve_throughput.json and exits nonzero when a gate fails:
//
//   * amortization gate: admissions/sec at group 32 must be >= 5x the
//     per-record-fdatasync baseline (group 1);
//   * equivalence gate: every configuration — any group size, shard
//     count, thread count, producer count — ends at the SAME state
//     digest (batching and parallelism must not change decisions).
//
// tools/check_bench_regression.py compares the emitted numbers against
// bench/baselines/serve_throughput_baseline.json in CI.
//
// Usage: serve_throughput [output.json]
//   VNFR_BENCH_QUICK=1  shrink the trace for smoke/CI
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "serve/admission_controller.hpp"
#include "serve/admission_pipeline.hpp"

using namespace vnfr;

namespace {

std::string fresh_dir(const std::string& root, const std::string& name) {
    const std::filesystem::path dir = std::filesystem::path(root) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

double seconds_since(const std::chrono::steady_clock::time_point& start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

struct GroupRun {
    std::size_t group{1};
    double seconds{0};
    double admissions_per_sec{0};
    std::uint64_t digest{0};
};

/// Single-threaded bare-controller drive: submit everything, then drain.
/// With a queue bound of n nothing sheds, so every request is decided and
/// WAL-logged — the measured rate is the durable-admission rate.
GroupRun run_group(const core::Instance& instance, std::size_t group,
                   const std::string& dir) {
    serve::ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = 1024;
    cfg.queue_capacity = instance.requests.size();
    cfg.group_commit = group;
    const auto start = std::chrono::steady_clock::now();
    serve::AdmissionController controller(instance, core::Scheme::kOnsite, cfg);
    for (std::size_t i = 0; i < instance.requests.size(); ++i) {
        controller.submit(i, instance.requests[i]);
    }
    controller.drain();
    GroupRun r;
    r.group = group;
    r.seconds = seconds_since(start);
    r.admissions_per_sec =
        static_cast<double>(instance.requests.size()) / r.seconds;
    r.digest = controller.state_digest();
    return r;
}

struct PipelineRun {
    std::size_t producers{1};
    std::size_t shards{1};
    std::size_t threads{1};
    std::size_t group{1};
    double seconds{0};
    double admissions_per_sec{0};
    std::uint64_t digest{0};
    std::uint64_t max_reorder_depth{0};
};

/// End-to-end pipeline drive: P producers round-robin the stream into the
/// MPSC transport; the consumer reorders to seq order and pumps batches.
PipelineRun run_pipeline(const core::Instance& instance, std::size_t producers,
                         std::size_t shards, std::size_t threads,
                         std::size_t group, const std::string& dir) {
    serve::ServeConfig cfg;
    cfg.data_dir = dir;
    cfg.checkpoint_every = 1024;
    cfg.queue_capacity = instance.requests.size();  // no sheds: pure throughput
    cfg.group_commit = group;
    cfg.decide_shards = shards;
    cfg.decide_threads = threads;

    PipelineRun r;
    r.producers = producers;
    r.shards = shards;
    r.threads = threads;
    r.group = group;
    const auto start = std::chrono::steady_clock::now();
    serve::AdmissionController controller(instance, core::Scheme::kOnsite, cfg);
    {
        serve::PipelineConfig pcfg;
        pcfg.transport_capacity = 256;
        pcfg.max_batch = group;
        serve::ShardedAdmissionPipeline pipeline(controller, pcfg);
        std::vector<std::thread> workers;
        workers.reserve(producers);
        for (std::size_t p = 0; p < producers; ++p) {
            workers.emplace_back([&, p] {
                for (std::size_t i = p; i < instance.requests.size(); i += producers) {
                    pipeline.submit(i, instance.requests[i]);
                }
            });
        }
        for (std::thread& t : workers) t.join();
        pipeline.stop();
        r.max_reorder_depth = pipeline.stats().max_reorder_depth;
    }
    r.seconds = seconds_since(start);
    r.admissions_per_sec =
        static_cast<double>(instance.requests.size()) / r.seconds;
    r.digest = controller.state_digest();
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_serve_throughput.json");

    const std::size_t requests = bench::quick_mode() ? 1500 : 8000;
    const std::uint64_t master = bench::scenario_seed("serve_throughput", requests);

    std::cout << "== Serve throughput: group commit + sharded pipeline ==\n";
    bench::print_thread_note();

    common::Rng rng = common::stream_rng(master, 0);
    const core::Instance instance =
        bench::make_factory(bench::paper_environment(requests))(rng);
    std::cout << "instance: " << instance.requests.size() << " requests, "
              << instance.network.cloudlet_count() << " cloudlets, horizon "
              << instance.horizon << "\n\n";

    const std::string work_root = "serve_throughput_state";
    ::mkdir(work_root.c_str(), 0755);

    // --- group sweep: the durability amortization curve -------------------
    std::vector<GroupRun> group_runs;
    for (const std::size_t group : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
        GroupRun r = run_group(instance, group,
                               fresh_dir(work_root, "group_" + std::to_string(group)));
        std::cout << "group " << group << ": "
                  << report::format_double(r.admissions_per_sec, 0)
                  << " admissions/s (" << report::format_double(r.seconds, 3)
                  << "s), digest " << report::hex_u64(r.digest) << "\n";
        group_runs.push_back(r);
    }
    const double per_record_rate = group_runs.front().admissions_per_sec;
    const double group32_rate = group_runs.back().admissions_per_sec;
    const double speedup = group32_rate / per_record_rate;
    std::cout << "group-commit speedup (32 vs per-record fdatasync): "
              << report::format_double(speedup, 1) << "x\n\n";

    // --- pipeline sweep: producers x shards x threads at group 32 ---------
    struct PipelineAxis {
        std::size_t producers, shards, threads, group;
    };
    const std::vector<PipelineAxis> axes = {
        {1, 1, 1, 32},
        {2, 4, 2, 32},
        {4, 8, 4, 32},
        {8, 8, 8, 32},
    };
    std::vector<PipelineRun> pipeline_runs;
    for (const PipelineAxis& a : axes) {
        const std::string tag = std::to_string(a.producers) + "p_" +
                                std::to_string(a.shards) + "s_" +
                                std::to_string(a.threads) + "t";
        PipelineRun r = run_pipeline(instance, a.producers, a.shards, a.threads,
                                     a.group, fresh_dir(work_root, "pipe_" + tag));
        std::cout << a.producers << " producers, " << a.shards << " shards, "
                  << a.threads << " threads: "
                  << report::format_double(r.admissions_per_sec, 0)
                  << " admissions/s (reorder depth " << r.max_reorder_depth
                  << "), digest " << report::hex_u64(r.digest) << "\n";
        pipeline_runs.push_back(r);
    }
    std::cout << '\n';

    // --- gates ------------------------------------------------------------
    bool digests_match = true;
    for (const GroupRun& r : group_runs) {
        digests_match = digests_match && r.digest == group_runs.front().digest;
    }
    for (const PipelineRun& r : pipeline_runs) {
        digests_match = digests_match && r.digest == group_runs.front().digest;
    }
    const double kSpeedupGate = 5.0;
    const bool speedup_ok = speedup >= kSpeedupGate;
    const bool all_ok = digests_match && speedup_ok;

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "serve_throughput");
    doc.set("quick", bench::quick_mode());
    doc.set("requests", static_cast<std::uint64_t>(requests));
    doc.set("master_seed", report::hex_u64(master));
    report::JsonValue groups = report::JsonValue::array();
    for (const GroupRun& r : group_runs) {
        report::JsonValue row = report::JsonValue::object();
        row.set("group_commit", static_cast<std::uint64_t>(r.group));
        row.set("seconds", r.seconds);
        row.set("admissions_per_sec", r.admissions_per_sec);
        row.set("digest", report::hex_u64(r.digest));
        groups.push(std::move(row));
    }
    doc.set("group_sweep", std::move(groups));
    doc.set("per_record_admissions_per_sec", per_record_rate);
    doc.set("group32_admissions_per_sec", group32_rate);
    doc.set("group_commit_speedup", speedup);
    report::JsonValue pipes = report::JsonValue::array();
    for (const PipelineRun& r : pipeline_runs) {
        report::JsonValue row = report::JsonValue::object();
        row.set("producers", static_cast<std::uint64_t>(r.producers));
        row.set("decide_shards", static_cast<std::uint64_t>(r.shards));
        row.set("decide_threads", static_cast<std::uint64_t>(r.threads));
        row.set("group_commit", static_cast<std::uint64_t>(r.group));
        row.set("seconds", r.seconds);
        row.set("admissions_per_sec", r.admissions_per_sec);
        row.set("max_reorder_depth", r.max_reorder_depth);
        row.set("digest", report::hex_u64(r.digest));
        pipes.push(std::move(row));
    }
    doc.set("pipeline_sweep", std::move(pipes));
    double pipeline_min = pipeline_runs.front().admissions_per_sec;
    for (const PipelineRun& r : pipeline_runs) {
        pipeline_min = std::min(pipeline_min, r.admissions_per_sec);
    }
    doc.set("pipeline_min_admissions_per_sec", pipeline_min);
    doc.set("digests_match", digests_match);
    doc.set("speedup_gate", kSpeedupGate);
    doc.set("speedup_gate_passed", speedup_ok);
    doc.set("all_gates_passed", all_ok);

    std::ofstream out(out_path);
    out << doc.dump() << '\n';
    std::cout << "wrote " << out_path << '\n';

    if (!all_ok) {
        if (!speedup_ok) {
            std::cerr << "FAIL: group-commit speedup " << speedup << " < "
                      << kSpeedupGate << "x\n";
        }
        if (!digests_match) {
            std::cerr << "FAIL: configurations disagree on the final state digest\n";
        }
        return 1;
    }
    std::cout << "PASS: " << report::format_double(speedup, 1)
              << "x over per-record fdatasync, all digests identical\n";
    return 0;
}
