// Cross-cutting optimizer properties on randomized models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/branch_and_bound.hpp"
#include "opt/lp.hpp"
#include "opt/presolve.hpp"
#include "opt/simplex.hpp"

namespace vnfr::opt {
namespace {

/// Random bounded LP with a mix of relations; always feasible at x = 0 for
/// the <= and the relaxed >= rows it generates.
LinearProgram random_mixed_lp(common::Rng& rng, std::size_t n, std::size_t m) {
    LinearProgram lp;
    for (std::size_t j = 0; j < n; ++j) {
        lp.add_variable(rng.uniform(-1.0, 5.0), rng.uniform(1.0, 4.0));
    }
    for (std::size_t k = 0; k < m; ++k) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < n; ++j) {
            if (rng.bernoulli(0.5)) terms.emplace_back(j, rng.uniform(0.2, 2.0));
        }
        if (terms.empty()) terms.emplace_back(0, 1.0);
        lp.add_row(std::move(terms), Relation::kLe,
                   rng.uniform(1.0, 2.0 * static_cast<double>(n)));
    }
    return lp;
}

// Property: replacing every equality row with a (<=, >=) pair leaves the
// optimum unchanged — exercises the artificial-variable machinery against
// the slack/surplus machinery.
class EqualitySplitTest : public ::testing::TestWithParam<int> {};

TEST_P(EqualitySplitTest, EqualityEqualsInequalityPair) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40009 + 7);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 8));

    LinearProgram with_eq = random_mixed_lp(rng, n, 2);
    LinearProgram with_pair = with_eq;

    // One extra equality row through the box interior so it is feasible:
    // sum of a few variables equals half its maximal value.
    std::vector<std::pair<std::size_t, double>> terms;
    double max_lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        if (j % 2 == 0) {
            const double coeff = rng.uniform(0.5, 1.5);
            terms.emplace_back(j, coeff);
            max_lhs += coeff * with_eq.upper_bound(j);
        }
    }
    const double rhs = max_lhs / 2.0;
    with_eq.add_row(terms, Relation::kEq, rhs);
    with_pair.add_row(terms, Relation::kLe, rhs);
    with_pair.add_row(terms, Relation::kGe, rhs);

    const LpSolution a = solve_lp(with_eq);
    const LpSolution b = solve_lp(with_pair);
    // The equality may conflict with the random <= rows; both encodings
    // must then agree on infeasibility.
    ASSERT_EQ(a.status, b.status);
    if (a.status != SolveStatus::kOptimal) return;
    EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::fabs(a.objective)));
    EXPECT_LE(with_eq.max_violation(a.x), 1e-6);
    EXPECT_LE(with_pair.max_violation(b.x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualitySplitTest, ::testing::Range(0, 15));

// Property: presolve composed with branch-and-bound preserves ILP optima.
class PresolveBnbTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveBnbTest, IlpOptimumSurvivesPresolve) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 50021 + 11);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 9));

    LinearProgram lp;
    std::vector<std::size_t> binaries;
    for (std::size_t j = 0; j < n; ++j) {
        binaries.push_back(lp.add_variable(rng.uniform(1.0, 8.0), 1.0));
    }
    // Fix a couple of binaries up front (what a B&B parent node does).
    for (std::size_t j = 0; j < n; ++j) {
        if (rng.bernoulli(0.3)) {
            const double v = rng.bernoulli(0.5) ? 1.0 : 0.0;
            lp.set_bounds(j, v, v);
        }
    }
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t j = 0; j < n; ++j) row.emplace_back(j, rng.uniform(0.5, 3.0));
    lp.add_row(std::move(row), Relation::kLe, rng.uniform(2.0, 2.0 * static_cast<double>(n)));

    const IlpSolution direct = solve_ilp(lp, binaries);

    const PresolveResult pre = presolve(lp);
    if (pre.infeasible) {
        EXPECT_FALSE(direct.has_incumbent);
        return;
    }
    // Binaries that survived presolve, re-indexed.
    std::vector<std::size_t> reduced_binaries;
    for (std::size_t r = 0; r < pre.kept.size(); ++r) reduced_binaries.push_back(r);
    const IlpSolution reduced = solve_ilp(pre.reduced, reduced_binaries);

    ASSERT_EQ(direct.has_incumbent, reduced.has_incumbent);
    if (!direct.has_incumbent) return;
    EXPECT_NEAR(direct.objective, reduced.objective + pre.objective_offset, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveBnbTest, ::testing::Range(0, 15));

// Property: duplicating a row never changes the optimum (degenerate-basis
// stress for the simplex).
class DuplicateRowTest : public ::testing::TestWithParam<int> {};

TEST_P(DuplicateRowTest, RedundancyIsHarmless) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 60013 + 17);
    const LinearProgram base = random_mixed_lp(rng, 6, 4);
    LinearProgram doubled = base;
    for (std::size_t k = 0; k < base.row_count(); ++k) {
        const Row& r = base.row(k);
        doubled.add_row(r.terms, r.relation, r.rhs);
    }
    const LpSolution a = solve_lp(base);
    const LpSolution b = solve_lp(doubled);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::fabs(a.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicateRowTest, ::testing::Range(0, 15));

// Property: scaling the objective scales the optimum (sanity against
// tolerance-dependent behaviour).
TEST(SimplexProperties, ObjectiveScalingIsLinear) {
    common::Rng rng(99);
    const LinearProgram base = random_mixed_lp(rng, 8, 5);
    LinearProgram scaled;
    for (std::size_t j = 0; j < base.variable_count(); ++j) {
        scaled.add_variable(base.objective_coefficient(j) * 7.0, base.upper_bound(j));
    }
    for (std::size_t k = 0; k < base.row_count(); ++k) {
        const Row& r = base.row(k);
        scaled.add_row(r.terms, r.relation, r.rhs);
    }
    const LpSolution a = solve_lp(base);
    const LpSolution b = solve_lp(scaled);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(b.objective, 7.0 * a.objective, 1e-6 * (1.0 + std::fabs(b.objective)));
}

}  // namespace
}  // namespace vnfr::opt
