file(REMOVE_RECURSE
  "CMakeFiles/vnfrsim.dir/vnfrsim.cpp.o"
  "CMakeFiles/vnfrsim.dir/vnfrsim.cpp.o.d"
  "vnfrsim"
  "vnfrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
