// Negative fixture for the lock-order rule: acquisitions that respect
// the declared hierarchy, including the two shapes that trip naive
// held-lock tracking — sibling scopes (earlier lock already released)
// and nested declared order.
#include "common/mutex.hpp"

namespace vnfr::common {

struct ControllerLike {
    Mutex mu_;
    Mutex mutex_;
    Mutex error_mutex;
};

void nested_in_declared_order(ControllerLike& c) {
    const MutexLock outer(&c.mu_);
    {
        const MutexLock middle(&c.mutex_);
        {
            const MutexLock leaf(&c.error_mutex);
        }
    }
}

// Sibling scopes: error_mutex is released before mutex_ is taken, so no
// inversion exists even though a later acquisition has a smaller rank.
void sequential_sibling_scopes(ControllerLike& c) {
    {
        const MutexLock first(&c.error_mutex);
    }
    {
        const MutexLock second(&c.mutex_);
    }
}

}  // namespace vnfr::common
