#include "core/greedy.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

std::vector<CloudletId> cloudlets_by_reliability(const Instance& instance) {
    std::vector<CloudletId> order;
    order.reserve(instance.network.cloudlet_count());
    for (const edge::Cloudlet& c : instance.network.cloudlets()) order.push_back(c.id);
    std::sort(order.begin(), order.end(), [&](CloudletId a, CloudletId b) {
        const double ra = instance.network.cloudlet(a).reliability;
        const double rb = instance.network.cloudlet(b).reliability;
        if (!common::almost_equal(ra, rb)) return ra > rb;
        return a < b;
    });
    return order;
}

}  // namespace

OnsiteGreedy::OnsiteGreedy(const Instance& instance)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce),
      by_reliability_(cloudlets_by_reliability(instance)) {}

Decision OnsiteGreedy::decide(const workload::Request& request) {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = instance_.catalog.reliability(request.vnf);
    bool any_reliable = false;
    for (const CloudletId j : by_reliability_) {
        const auto n = vnf::min_onsite_replicas(instance_.network.cloudlet(j).reliability,
                                                vnf_rel, request.requirement);
        if (!n) continue;
        VNFR_CHECK(*n >= 1, "Eq. (3) replica count for request ", request.id.value,
                   " on cloudlet ", j.value);
        any_reliable = true;
        const double demand = *n * compute;
        if (!ledger_.fits(j, request.arrival, request.end(), demand)) continue;
        ledger_.reserve(j, request.arrival, request.end(), demand);
        Decision d;
        d.admitted = true;
        d.placement = Placement{request.id, {Site{j, *n}}};
        return d;
    }
    Decision rejected;
    rejected.reject_reason = any_reliable ? RejectReason::kNoCapacity
                                          : RejectReason::kInfeasibleRequirement;
    return rejected;
}

OffsiteGreedy::OffsiteGreedy(const Instance& instance)
    : instance_(instance),
      ledger_(instance.network.capacities(), instance.horizon,
              edge::CapacityPolicy::kEnforce),
      by_reliability_(cloudlets_by_reliability(instance)) {}

Decision OffsiteGreedy::decide(const workload::Request& request) {
    const double compute = instance_.catalog.compute_units(request.vnf);
    const double vnf_rel = VNFR_CHECK_PROB(instance_.catalog.reliability(request.vnf));
    const double log_target = common::log1m(request.requirement);

    std::vector<CloudletId> selected;
    double log_fail = 0.0;
    double log_fail_everything = 0.0;
    bool met = false;
    for (const CloudletId j : by_reliability_) {
        const double pair_fail =
            vnf::offsite_log_failure(vnf_rel, instance_.network.cloudlet(j).reliability);
        VNFR_DCHECK(pair_fail < 0.0, "offsite log-failure must be negative for cloudlet ",
                    j.value);
        log_fail_everything += pair_fail;
        if (met || !ledger_.fits(j, request.arrival, request.end(), compute)) continue;
        selected.push_back(j);
        log_fail += pair_fail;
        if (log_fail <= log_target) met = true;
    }
    if (!met) {
        Decision rejected;
        rejected.reject_reason = log_fail_everything <= log_target
                                     ? RejectReason::kNoCapacity
                                     : RejectReason::kInfeasibleRequirement;
        return rejected;
    }

    Placement placement{request.id, {}};
    placement.sites.reserve(selected.size());
    for (const CloudletId j : selected) {
        ledger_.reserve(j, request.arrival, request.end(), compute);
        placement.sites.push_back(Site{j, 1});
    }
    Decision d;
    d.admitted = true;
    d.placement = std::move(placement);
    return d;
}

}  // namespace vnfr::core
