
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/algorithms.cpp" "src/net/CMakeFiles/vnfr_net.dir/algorithms.cpp.o" "gcc" "src/net/CMakeFiles/vnfr_net.dir/algorithms.cpp.o.d"
  "/root/repo/src/net/generators.cpp" "src/net/CMakeFiles/vnfr_net.dir/generators.cpp.o" "gcc" "src/net/CMakeFiles/vnfr_net.dir/generators.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/vnfr_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/vnfr_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/vnfr_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/vnfr_net.dir/shortest_path.cpp.o.d"
  "/root/repo/src/net/topology_zoo.cpp" "src/net/CMakeFiles/vnfr_net.dir/topology_zoo.cpp.o" "gcc" "src/net/CMakeFiles/vnfr_net.dir/topology_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
