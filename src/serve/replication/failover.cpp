#include "serve/replication/failover.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "serve/vfs.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"

namespace vnfr::serve::replication {

namespace {

std::string wal_path(const std::string& dir, std::uint64_t generation) {
    return dir + "/wal-" + std::to_string(generation) + ".log";
}

/// Sorted WAL generation numbers present in `dir` on `vfs`.
std::vector<std::uint64_t> list_generations(Vfs& vfs, const std::string& dir) {
    std::vector<std::uint64_t> gens;
    if (!vfs.dir_exists(dir)) return gens;
    for (const std::string& name : vfs.list_dir(dir)) {
        if (!name.starts_with("wal-") || !name.ends_with(".log")) continue;
        const std::string digits = name.substr(4, name.size() - 8);
        if (digits.empty()) continue;
        std::uint64_t gen = 0;
        bool numeric = true;
        for (const char c : digits) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (numeric) gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
}

}  // namespace

FailoverCoordinator::FailoverCoordinator(std::string primary_data_dir)
    : FailoverCoordinator(std::move(primary_data_dir), posix_vfs()) {}

FailoverCoordinator::FailoverCoordinator(std::string primary_data_dir, Vfs& vfs)
    : primary_dir_(std::move(primary_data_dir)), vfs_(&vfs) {}

PromotionReport FailoverCoordinator::promote(StandbyController& standby) {
    PromotionReport report;
    const ShipAck mark = standby.watermark();
    const std::vector<std::uint64_t> gens = list_generations(*vfs_, primary_dir_);
    if (!gens.empty() && mark.generation <= gens.back()) {
        const std::uint64_t top = gens.back();
        // Releases are gated on acks, so every generation from the
        // standby's watermark to the newest must still exist; a hole is
        // unrecoverable data loss and promotion must fail loudly.
        for (std::uint64_t g = mark.generation; g <= top; ++g) {
            if (!std::binary_search(gens.begin(), gens.end(), g)) {
                throw ReplicationGapError(
                    g, "generation missing from the primary's directory "
                       "during promotion catch-up");
            }
        }
        for (std::uint64_t g = mark.generation; g <= top; ++g) {
            // Only the newest generation can carry a torn tail (the
            // primary appended to it when it died); older generations
            // were closed by rotation and must parse strictly.
            const WalReadMode mode =
                g == top ? WalReadMode::kRecover : WalReadMode::kStrict;
            const std::string path = wal_path(primary_dir_, g);
            const WalContents contents = read_wal(*vfs_, path, mode);
            if (contents.wal_seq != g) {
                throw CorruptStateError(path, 0,
                                        "WAL header generation " +
                                            std::to_string(contents.wal_seq) +
                                            " does not match its filename");
            }
            ++report.generations_scanned;
            if (g == top) {
                report.torn_tail_bytes = contents.bytes_discarded;
                report.torn_tail_records = contents.records_discarded;
            }
            for (const WalRecord& rec : contents.records) {
                if (standby.controller().apply_replicated(rec)) {
                    ++report.disk_records_applied;
                } else {
                    ++report.disk_records_skipped;
                }
            }
        }
    }
    // fsync-before-promote: the caught-up state must be durable in the
    // standby's own directory before it takes over admissions — a crash
    // right after promotion must not lose the inherited suffix.
    standby.controller().checkpoint();
    standby.controller().mark_promoted();
    report.promoted_digest = standby.controller().state_digest();
    return report;
}

}  // namespace vnfr::serve::replication
