// Scheduling decisions and results shared by every algorithm.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "edge/resource_ledger.hpp"
#include "workload/request.hpp"

namespace vnfr::core {

struct Instance;

/// Where one request's VNF instances were placed. Under the on-site scheme
/// there is exactly one site with `replicas = N_ij`; under the off-site
/// scheme one site per selected cloudlet with `replicas = 1`.
struct Site {
    CloudletId cloudlet;
    int replicas{0};
};

struct Placement {
    RequestId request;
    std::vector<Site> sites;

    /// Total computing units this placement consumes per active slot, given
    /// the per-instance demand c(f_i).
    [[nodiscard]] double compute_per_slot(double per_instance) const;
};

/// Why a request was rejected (kNone when admitted).
enum class RejectReason {
    kNone,
    /// No cloudlet can ever satisfy the requirement (on-site: r(c) <= R_i
    /// everywhere; off-site: even the full cloudlet set falls short).
    kInfeasibleRequirement,
    /// Feasible in principle, but the dual prices exceed the payment.
    kPricedOut,
    /// Feasible and affordable, but no cloudlet has enough residual
    /// capacity over the request's window.
    kNoCapacity,
};

const char* to_string(RejectReason reason);

struct Decision {
    bool admitted{false};
    RejectReason reject_reason{RejectReason::kNone};
    Placement placement;  ///< meaningful only when admitted
};

/// Serializable snapshot of an online scheduler's mutable state: the dual
/// price matrix and the ledger's usage table. For the primal-dual
/// schedulers decide() is a deterministic function of (instance, config,
/// this state), so exporting and later importing a SchedulerState yields
/// bit-identical future decisions — the property the serve layer's
/// crash-consistent checkpointing is built on.
struct SchedulerState {
    std::vector<std::vector<double>> lambda;  ///< [cloudlet][slot] dual prices
    std::vector<double> usage;  ///< row-major [cloudlet][slot] ledger usage
};

/// Throws std::invalid_argument (with the offending index) unless `state`
/// has exactly `cloudlets` lambda rows of `horizon` entries each, a usage
/// table of cloudlets * horizon cells, and every value finite and >= 0.
void validate_scheduler_state(const SchedulerState& state, std::size_t cloudlets,
                              TimeSlot horizon);

/// Every online algorithm implements this. `decide` must be called exactly
/// once per request, in arrival order; the scheduler updates its internal
/// ledger/dual state as a side effect.
class OnlineScheduler {
  public:
    virtual ~OnlineScheduler() = default;

    virtual Decision decide(const workload::Request& request) = 0;

    /// The scheduler's resource accounting (for utilization/violation
    /// inspection after a run).
    [[nodiscard]] virtual const edge::ResourceLedger& ledger() const = 0;

    [[nodiscard]] virtual std::string_view name() const = 0;

    /// True when this scheduler implements export_state()/import_state()
    /// (the primal-dual schedulers do; heuristics without serializable
    /// state keep the default false).
    [[nodiscard]] virtual bool supports_state_io() const { return false; }

    /// Snapshot of the mutable decision state. Default throws
    /// std::logic_error; overridden where supports_state_io() is true.
    [[nodiscard]] virtual SchedulerState export_state() const;

    /// Restore a previously exported state (validated against the bound
    /// instance's shape; throws std::invalid_argument on mismatch).
    /// Analysis-only side outputs (e.g. OnsitePrimalDual::deltas()) reset
    /// to empty — they are not part of the decision state.
    virtual void import_state(const SchedulerState& state);
};

/// Outcome of replaying a full request sequence through a scheduler.
struct ScheduleResult {
    std::vector<Decision> decisions;  ///< parallel to Instance::requests
    double revenue{0};                ///< paper objective: sum of admitted payments
    std::size_t admitted{0};
    /// Peak usage-over-capacity across cloudlets and slots (0 unless the
    /// scheduler runs with CapacityPolicy::kRecord).
    double max_overshoot{0};
    /// Peak usage/capacity ratio across cloudlets and slots.
    double max_load_factor{0};
};

/// Feeds `instance.requests` (already in arrival order) one by one into the
/// scheduler and aggregates the outcome.
ScheduleResult run_online(const Instance& instance, OnlineScheduler& scheduler);

/// Acceptance ratio of a result given the instance size (0 for no requests).
double acceptance_ratio(const ScheduleResult& result, const Instance& instance);

/// Histogram of rejection reasons in a result (admitted requests are not
/// counted). Index with RejectReason casts.
struct RejectionBreakdown {
    std::size_t infeasible_requirement{0};
    std::size_t priced_out{0};
    std::size_t no_capacity{0};
};

RejectionBreakdown rejection_breakdown(const ScheduleResult& result);

}  // namespace vnfr::core
