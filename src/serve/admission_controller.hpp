// A long-lived, crash-safe service wrapper around the online primal-dual
// schedulers: requests stream in through a bounded admission queue, every
// durable outcome (decision or shed) is WAL-logged before it becomes
// observable, and the full controller state checkpoints atomically every
// `checkpoint_every` outcomes.
//
// Recovery contract. decide() of both primal-dual schedulers is a
// deterministic function of (instance, config, dual prices, ledger
// usage), so the controller persists exactly that state plus its own
// bookkeeping. Restart = load snapshot, then *re-execute* each WAL'd
// decision against the restored scheduler and cross-check the logged
// outcome (a mismatch means the files lie about the state and recovery
// refuses to continue). The result is bit-identical controller state:
// same duals, same usage, same revenue bits, same admitted set.
//
// Idempotency. Every request carries a stream sequence number. A seq
// whose outcome is already durable ("covered") is skipped on
// resubmission, so a driver that replays its input after a crash cannot
// double-admit or double-charge. The covered set is a watermark plus a
// sparse overflow set, so it stays O(queue) in memory.
//
// Overload guard. The queue is bounded; when a submit overflows it, the
// lowest-payment request among (queued + incoming) is shed — logged,
// counted in shed_revenue, and reported to the caller. Ties prefer
// keeping the older request. Victim selection is O(log n) via a
// min-payment heap over the queued requests (lazily pruned), not a scan.
//
// Group commit. With group_commit > 1, pump() stages up to that many
// decision records in memory and externalizes them with ONE write and
// ONE fdatasync per group, amortizing the dominant durability cost.
// Outcomes are applied (counters, admitted ledger, coverage — i.e. made
// observable) only after their group's fdatasync returned, so the
// durable-before-observable ordering is preserved; what group commit
// adds is a crash window in which decided-but-uncommitted records
// vanish wholesale (they were never externalized) and are simply
// resubmitted after recovery. See DESIGN.md 6d for the window-by-window
// argument. Submit-path shed records never batch: submit() reports the
// shed synchronously, so its record is fdatasync'd before return.
//
// Sharded parallel decide. With decide_shards > 1 the horizon is
// partitioned into slot bands (serve/shard_plan.hpp); each pump chunk is
// decided as a sequence of waves of band-disjoint requests, each wave
// run in parallel on an internal thread pool (decide_threads). Window-
// disjoint decisions commute bit-exactly, so the result is identical to
// sequential processing at every shard and thread count — the chaos
// gate enforces this.
//
// Thread safety. All mutable state is guarded by one internal
// common::Mutex (annotated for Clang thread-safety analysis): submit,
// pump, drain, checkpoint, and every accessor may be called from any
// thread. WAL appends and the checkpoint rotation happen while the lock
// is held, so the durable-before-observable ordering is preserved under
// concurrency. During a pump chunk the wave executor additionally takes
// the owning shard's mutex around each decide; exclusion inside a wave
// is guaranteed by the wave plan (disjoint bands), the per-shard lock
// asserts it cheaply and keeps the lock discipline uniform. scheduler()
// returns a reference into guarded state — it is safe only while no
// other thread is mutating the controller (use it from quiesced
// test/report code, not concurrently with pump()).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/thread_pool.hpp"
#include "core/instance.hpp"
#include "core/offline.hpp"
#include "core/schedule.hpp"
#include "serve/shard_plan.hpp"
#include "serve/snapshot.hpp"
#include "serve/wal.hpp"

namespace vnfr::serve {

/// Thrown by the crash_after_records() test hook; simulates the process
/// dying immediately after a durable WAL append.
class CrashInjected : public std::runtime_error {
  public:
    explicit CrashInjected(std::uint64_t records)
        : std::runtime_error("injected crash after " + std::to_string(records) +
                             " WAL records") {}
};

/// Thrown instead of accepting work the controller cannot durably log:
/// after a persistent storage error (ENOSPC, retries-exhausted EIO) the
/// controller enters degraded read-only mode — already-admitted state
/// keeps serving, but submit/pump/apply_replicated refuse with this
/// error until storage recovers (see StorageHealth below).
class StorageDegradedError : public std::runtime_error {
  public:
    explicit StorageDegradedError(const std::string& what)
        : std::runtime_error(what) {}
};

/// Storage health of a controller. Degraded means a persistent storage
/// error interrupted WAL/snapshot durability: no new outcome can be
/// logged, so none is accepted. Recovery (automatic probes per
/// ServeConfig::degraded_probe_every, or try_recover_storage()) repairs
/// the WAL tail and proves writability with a full checkpoint rotation
/// before the controller admits again. The replication layer treats a
/// degraded primary as dead — its durable WAL prefix is intact, so
/// failover promotes the standby exactly as after a crash.
enum class StorageHealth : std::uint8_t {
    kHealthy,
    kDegraded,
};

/// Counters of the storage fault-handling machinery.
struct StorageStats {
    /// Transient storage errors absorbed by bounded retries (WAL commits,
    /// snapshot writes, WAL creation).
    std::uint64_t transient_retries{0};
    /// Times the controller entered degraded read-only mode.
    std::uint64_t degraded_entries{0};
    /// Operations refused (with StorageDegradedError) while degraded.
    std::uint64_t degraded_refusals{0};
    /// Successful recoveries out of degraded mode.
    std::uint64_t recoveries{0};
};

struct ServeConfig {
    /// Directory holding snapshot.bin and wal-<gen>.log. Must exist.
    std::string data_dir;
    /// Take a snapshot (and rotate the WAL) every this many WAL records.
    std::size_t checkpoint_every{64};
    /// Bounded admission queue size; submits beyond it shed the
    /// lowest-payment request.
    std::size_t queue_capacity{256};
    /// Decision records per fdatasync in pump(): 1 reproduces the
    /// per-record durability of the original controller; larger values
    /// amortize one write + one fdatasync over up to this many records.
    /// Never changes decisions or recovered state — only which crash
    /// windows can lose (and therefore re-decide) a trailing group.
    std::size_t group_commit{1};
    /// Slot bands the horizon is partitioned into for wave-parallel
    /// decide (1 = strictly sequential). Decisions are bit-identical at
    /// every value; more shards only expose more parallelism.
    std::size_t decide_shards{1};
    /// Threads executing decision waves, including the pumping thread
    /// (1 = no pool). Effective only with decide_shards > 1.
    std::size_t decide_threads{1};
    /// Keep rotated-out WAL generations on disk instead of unlinking them
    /// at checkpoint. A replication shipper tails those files and releases
    /// them via release_wals_below() once the standby has acknowledged
    /// them — unlinking earlier would open a silent gap in the shipped
    /// stream.
    bool retain_wals{false};
    /// Start in standby (follower) role: submit/pump/drain are refused
    /// and state advances only through apply_replicated(), until
    /// mark_promoted() flips the controller to primary.
    bool standby{false};
    /// Storage backend every snapshot/WAL byte routes through; null
    /// selects the process-wide PosixVfs. The caller keeps it alive for
    /// the controller's lifetime (fault-injection harnesses pass a
    /// FaultyVfs here).
    Vfs* vfs{nullptr};
    /// Bounded-retry policy for transient storage errors on the WAL
    /// commit and snapshot paths.
    StorageRetryPolicy storage_retry{};
    /// While degraded, every this-many-th refused operation probes
    /// storage recovery (WAL tail repair + a full checkpoint rotation as
    /// the writability proof). 0 disables automatic probes — recovery
    /// then happens only via explicit try_recover_storage() calls.
    std::size_t degraded_probe_every{16};
};

/// Which side of a replicated pair this controller currently is.
enum class ControllerRole : std::uint8_t {
    kPrimary,  ///< decides requests itself (submit/pump/drain)
    kStandby,  ///< applies shipped records only (apply_replicated)
};

/// Where the current WAL generation durably ends — the shipper's view of
/// what may be replicated. Taken atomically under the controller lock.
struct WalPosition {
    std::uint64_t generation{0};
    /// Records committed to the current generation.
    std::uint64_t records{0};
    /// Committed bytes of the current generation file (header included);
    /// bytes beyond this are staged or in-flight and must not be shipped.
    std::uint64_t durable_bytes{0};
};

/// What the constructor's recovery pass found on disk. A nonzero
/// torn_tail_bytes is the operator-visible signal that a crash tore the
/// final append and recovery truncated it (previously silent).
struct RecoveryStats {
    bool recovered_snapshot{false};  ///< a snapshot was loaded
    bool recovered_wal{false};       ///< a WAL existed and was replayed
    std::uint64_t wal_records_replayed{0};
    std::uint64_t torn_tail_bytes{0};
    std::uint64_t torn_tail_records{0};
};

/// Outcome of submitting one request to the stream.
enum class SubmitResult {
    kQueued,          ///< accepted into the admission queue
    kShedIncoming,    ///< queue full and the incoming request paid least
    kShedQueued,      ///< queue full; a cheaper queued request was evicted
    kAlreadyCovered,  ///< this seq's outcome is already durable (replay)
};

/// One decided request, as returned by pump().
struct ProcessedOutcome {
    std::uint64_t seq{0};
    workload::Request request;
    core::Decision decision;
};

class AdmissionController {
  public:
    /// Binds to `instance` (kept alive by the caller) under `scheme`.
    /// If `config.data_dir` already holds a snapshot and/or WAL, the
    /// constructor recovers from them (replaying the WAL as described
    /// above); otherwise it starts fresh and creates generation-0 files.
    AdmissionController(const core::Instance& instance, core::Scheme scheme,
                        ServeConfig config);

    AdmissionController(const AdmissionController&) = delete;
    AdmissionController& operator=(const AdmissionController&) = delete;

    /// Feeds one request into the stream. `seq` is the request's position
    /// in the stream; submit seqs in increasing order (covered seqs may be
    /// replayed in any order and are skipped).
    SubmitResult submit(std::uint64_t seq, const workload::Request& request)
        VNFR_EXCLUDES(mu_);

    /// Decides queued requests in FIFO order, up to `max_requests`, WAL-
    /// logging each outcome and checkpointing on cadence. Returns the
    /// decided batch.
    std::vector<ProcessedOutcome> pump(std::size_t max_requests) VNFR_EXCLUDES(mu_);

    /// pump() until the queue is empty.
    std::vector<ProcessedOutcome> drain() VNFR_EXCLUDES(mu_);

    /// Takes a snapshot now and rotates to a fresh WAL generation.
    void checkpoint() VNFR_EXCLUDES(mu_);

    /// Standby role only: durably appends one record shipped from the
    /// primary to this controller's own WAL (fdatasync before anything
    /// becomes observable), then applies it exactly like recovery replay —
    /// decisions are re-executed and cross-checked, so primary/standby
    /// divergence dies as CorruptStateError instead of propagating.
    /// Returns false (and does nothing) when `rec.seq` is already covered,
    /// which makes retransmitted and disk-replayed records idempotent.
    /// Records must arrive in stream order, the same order the primary
    /// logged them. Checkpoints on the configured cadence.
    bool apply_replicated(const WalRecord& rec) VNFR_EXCLUDES(mu_);

    /// Flips a standby to primary. Callers must make the caught-up state
    /// durable first (checkpoint()) — the replication layer's promotion
    /// path enforces that ordering statically (vnfr-asa
    /// replication-promote-checkpoint). Idempotent on a primary.
    void mark_promoted() VNFR_EXCLUDES(mu_);

    [[nodiscard]] ControllerRole role() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return role_;
    }

    /// Atomic snapshot of the durable end of the current WAL generation.
    [[nodiscard]] WalPosition wal_position() const VNFR_EXCLUDES(mu_);

    /// Unlinks retained WAL generations strictly below `generation`
    /// (never the current one). Only meaningful with retain_wals; the
    /// shipper calls this with the standby's acknowledged generation —
    /// releasing anything un-acked would tear the shipped stream.
    void release_wals_below(std::uint64_t generation) VNFR_EXCLUDES(mu_);

    /// What recovery found on disk at construction time.
    [[nodiscard]] RecoveryStats recovery_stats() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return recovery_stats_;
    }

    [[nodiscard]] ServeMetrics metrics() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return metrics_;
    }
    [[nodiscard]] std::size_t queue_size() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return queue_.size();
    }
    [[nodiscard]] std::vector<AdmittedRecord> admitted_records() const
        VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return admitted_;
    }
    /// Smallest stream seq whose outcome is not yet durable; after a
    /// crash, resubmit from here.
    [[nodiscard]] std::uint64_t resume_cursor() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return covered_watermark_;
    }
    [[nodiscard]] bool is_covered(std::uint64_t seq) const VNFR_EXCLUDES(mu_);
    /// Records appended to the current WAL generation (resets at
    /// checkpoint).
    [[nodiscard]] std::uint64_t wal_records() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return wal_records_;
    }
    [[nodiscard]] std::uint64_t wal_generation() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return wal_seq_;
    }
    /// See the thread-safety note in the file comment: the returned
    /// reference is into guarded state and must not be used concurrently
    /// with mutating calls.
    [[nodiscard]] const core::OnlineScheduler& scheduler() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return *scheduler_;
    }
    [[nodiscard]] core::Scheme scheme() const { return scheme_; }

    /// FNV-1a digest over the complete logical state: scheme, counters,
    /// revenue bits, dual-price bits, usage bits, coverage, and the
    /// admitted ledger. Two controllers with equal digests decide every
    /// future request identically.
    [[nodiscard]] std::uint64_t state_digest() const VNFR_EXCLUDES(mu_);

    /// Shape digest binding persisted files to this instance + scheme.
    [[nodiscard]] std::uint64_t config_digest() const { return config_digest_; }

    /// The storage backend this controller routes all durable I/O
    /// through (immutable after construction).
    [[nodiscard]] Vfs& vfs() const { return *vfs_; }

    [[nodiscard]] StorageHealth storage_health() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return health_;
    }

    /// Human-readable cause of the current degraded mode (empty when
    /// healthy).
    [[nodiscard]] std::string degraded_reason() const VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        return degraded_reason_;
    }

    [[nodiscard]] StorageStats storage_stats() const VNFR_EXCLUDES(mu_);

    /// Attempts to leave degraded mode now: repairs the WAL tail (a
    /// failed commit may have left un-synced garbage past the durable
    /// prefix) and proves storage writability with a full checkpoint
    /// rotation. Returns true when the controller is healthy afterwards.
    /// Never throws on a still-broken disk — the probe just fails.
    bool try_recover_storage() VNFR_EXCLUDES(mu_);

    /// Test hook: throw CrashInjected immediately after the n-th WAL
    /// append from now (1 = crash after the next record). 0 disables.
    void crash_after_records(std::uint64_t n) VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        crash_countdown_ = n;
    }

    /// Test hook: throw CrashInjected *inside* the next checkpoint
    /// rotation. Stage 1 dies after the next WAL generation file was
    /// created but before the snapshot referencing it was saved; stage 2
    /// dies after the snapshot was saved but before the old generation
    /// was retired. 0 disables. Both are legal crash windows the recovery
    /// and failover protocols must absorb.
    void crash_at_checkpoint_stage(int stage) VNFR_EXCLUDES(mu_) {
        const common::MutexLock lock(&mu_);
        checkpoint_crash_stage_ = stage;
    }

  private:
    struct QueueItem {
        std::uint64_t seq;
        workload::Request request;
    };

    /// Heap entry for O(log n) shed-victim selection. The heap orders by
    /// (payment ascending, seq descending): the top is the queued request
    /// the overload guard would evict first. Entries are not removed when
    /// their request leaves the queue (pumped or evicted); stale entries
    /// are skipped lazily and the heap is rebuilt when it grows well past
    /// the live queue.
    struct ShedCandidate {
        double payment;
        std::uint64_t seq;
    };
    struct ShedVictimOrder {
        bool operator()(const ShedCandidate& a, const ShedCandidate& b) const {
            // std::priority_queue keeps the comparator's maximum on top;
            // "greater" here means "worthier victim".
            if (a.payment != b.payment) return a.payment > b.payment;
            return a.seq < b.seq;
        }
    };

    /// One slot band of the wave executor. The mutex serializes decides
    /// whose band ranges start in this band; see the file comment.
    struct Shard {
        common::Mutex shard_mu;
    };

    void recover() VNFR_REQUIRES(mu_);
    void replay_record(const WalRecord& rec, const std::string& path)
        VNFR_REQUIRES(mu_);
    void mark_covered(std::uint64_t seq) VNFR_REQUIRES(mu_);
    [[nodiscard]] bool is_covered_locked(std::uint64_t seq) const VNFR_REQUIRES(mu_);
    void append_wal(const WalRecord& rec) VNFR_REQUIRES(mu_);
    void stage_wal(const WalRecord& rec) VNFR_REQUIRES(mu_);
    void commit_wal() VNFR_REQUIRES(mu_);
    void apply_decision(std::uint64_t seq, const workload::Request& request,
                        const core::Decision& decision) VNFR_REQUIRES(mu_);
    void shed(const QueueItem& victim) VNFR_REQUIRES(mu_);
    /// Decides `batch` (stream order) and returns decisions in the same
    /// order, bit-identical to a sequential loop; uses the wave executor
    /// when sharding + a pool are configured.
    std::vector<core::Decision> decide_batch(const std::vector<workload::Request>& batch)
        VNFR_REQUIRES(mu_);
    /// Drops stale heap entries once the heap is far larger than the live
    /// queue (amortized O(1) per queue operation).
    void prune_shed_heap() VNFR_REQUIRES(mu_);
    std::vector<ProcessedOutcome> pump_locked(std::size_t max_requests)
        VNFR_REQUIRES(mu_);
    void checkpoint_locked() VNFR_REQUIRES(mu_);
    /// Builds the snapshot image of the current state, referencing the
    /// next WAL generation.
    [[nodiscard]] ControllerSnapshot build_snapshot_locked() const
        VNFR_REQUIRES(mu_);
    /// The raw rotation (create next gen, save snapshot, retire old gen);
    /// throws VfsError on storage failure — callers decide whether that
    /// degrades the controller (checkpoint_locked) or just fails a
    /// recovery probe (try_recover_locked).
    void rotate_checkpoint_locked(const ControllerSnapshot& snap)
        VNFR_REQUIRES(mu_);
    /// Enters degraded read-only mode and throws StorageDegradedError.
    [[noreturn]] void enter_degraded_locked(const char* what, const VfsError& err)
        VNFR_REQUIRES(mu_);
    /// Throws StorageDegradedError when degraded (after counting the
    /// refusal and, on cadence, probing recovery).
    void require_storage_healthy_locked(const char* op) VNFR_REQUIRES(mu_);
    [[nodiscard]] bool try_recover_locked() VNFR_REQUIRES(mu_);
    [[nodiscard]] std::string snapshot_path() const;
    [[nodiscard]] std::string wal_path(std::uint64_t generation) const;
    /// Removes WAL files recovery must not see again: generations above
    /// the current one always (half-created rotation leftovers), and with
    /// retain_wals off, everything but the current generation.
    void remove_stale_wals() const VNFR_REQUIRES(mu_);
    void require_primary(const char* op) const VNFR_REQUIRES(mu_);

    // Immutable after construction (no guard needed).
    const core::Instance& instance_;
    core::Scheme scheme_;
    ServeConfig config_;
    std::uint64_t config_digest_{0};
    /// Resolved storage backend (config_.vfs or the PosixVfs).
    Vfs* vfs_{nullptr};

    /// One lock for all mutable state: admissions are serialized end to
    /// end (decide -> WAL append -> apply), which is exactly the ordering
    /// the recovery proof needs. mutable so const accessors can lock.
    mutable common::Mutex mu_;

    /// Wave-executor infrastructure; immutable after construction. The
    /// pool exists only when decide_shards > 1 and decide_threads > 1.
    std::optional<ShardPlan> plan_;
    std::unique_ptr<Shard[]> shards_;
    std::unique_ptr<common::ThreadPool> pool_;

    std::unique_ptr<core::OnlineScheduler> scheduler_ VNFR_GUARDED_BY(mu_);
    /// Admission queue keyed by stream seq — iteration order is FIFO
    /// because seqs are submitted in increasing order.
    std::map<std::uint64_t, workload::Request> queue_ VNFR_GUARDED_BY(mu_);
    /// Lazy min-payment heap over queue_ for O(log n) shedding.
    std::priority_queue<ShedCandidate, std::vector<ShedCandidate>, ShedVictimOrder>
        shed_heap_ VNFR_GUARDED_BY(mu_);
    ServeMetrics metrics_ VNFR_GUARDED_BY(mu_);
    std::vector<AdmittedRecord> admitted_ VNFR_GUARDED_BY(mu_);
    std::uint64_t covered_watermark_ VNFR_GUARDED_BY(mu_) = 0;
    std::set<std::uint64_t> covered_sparse_ VNFR_GUARDED_BY(mu_);

    std::uint64_t wal_seq_ VNFR_GUARDED_BY(mu_) = 0;
    /// Records in the current generation.
    std::uint64_t wal_records_ VNFR_GUARDED_BY(mu_) = 0;
    /// Appends since construction.
    std::uint64_t appends_this_run_ VNFR_GUARDED_BY(mu_) = 0;
    std::optional<WalWriter> wal_ VNFR_GUARDED_BY(mu_);
    std::uint64_t crash_countdown_ VNFR_GUARDED_BY(mu_) = 0;
    int checkpoint_crash_stage_ VNFR_GUARDED_BY(mu_) = 0;
    /// Generations below this are known-unlinked (release_wals_below).
    std::uint64_t release_floor_ VNFR_GUARDED_BY(mu_) = 0;
    ControllerRole role_ VNFR_GUARDED_BY(mu_) = ControllerRole::kPrimary;
    RecoveryStats recovery_stats_ VNFR_GUARDED_BY(mu_);
    StorageHealth health_ VNFR_GUARDED_BY(mu_) = StorageHealth::kHealthy;
    std::string degraded_reason_ VNFR_GUARDED_BY(mu_);
    StorageStats storage_stats_ VNFR_GUARDED_BY(mu_);
};

/// The shape digest save/load validates against: cloudlet capacities and
/// reliabilities (bit patterns), horizon, catalog entries, and scheme.
[[nodiscard]] std::uint64_t instance_config_digest(const core::Instance& instance,
                                                   core::Scheme scheme);

}  // namespace vnfr::serve
