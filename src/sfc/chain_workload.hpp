// Synthetic SFC workloads: chains of 2-5 functions drawn from the VNF
// catalog, with the same arrival/duration/payment model as single-VNF
// requests (payment scales with the chain's base compute demand).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sfc/chain.hpp"
#include "vnf/catalog.hpp"
#include "workload/generator.hpp"

namespace vnfr::sfc {

struct ChainWorkloadConfig {
    TimeSlot horizon{24};
    std::size_t count{100};
    std::size_t chain_length_min{2};
    std::size_t chain_length_max{4};
    TimeSlot duration_min{2};
    TimeSlot duration_max{8};
    double requirement_min{0.90};
    double requirement_max{0.97};
    /// Payment = rate * duration * base_compute * R, base_compute being the
    /// chain's one-replica-per-function demand.
    double payment_rate_min{1.0};
    double payment_rate_max{5.0};
};

/// Generates `config.count` chain requests sorted by arrival. Functions
/// within a chain are distinct when the catalog is large enough.
std::vector<ChainRequest> generate_chains(const ChainWorkloadConfig& config,
                                          const vnf::Catalog& catalog, common::Rng& rng);

}  // namespace vnfr::sfc
