// The Vfs layer itself: PosixVfs round-trips, FaultyVfs's page-cache
// model (durable vs cached bytes, power cuts, stale fds), scripted and
// seeded fault injection, the bounded-retry wrapper, and the failure
// atomicity of the write -> fsync -> rename -> dirsync publish path as
// exercised through WalWriter and the admission controller.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "helpers.hpp"
#include "serve/admission_controller.hpp"
#include "serve/vfs.hpp"
#include "serve/wal.hpp"
#include "serve/wal_scrubber.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

constexpr const char* kDir = "/disk";

std::string at(const std::string& name) { return std::string(kDir) + "/" + name; }

// ---------------------------------------------------------------- FaultyVfs

TEST(ServeVfs, FaultyVfsRoundTripsThroughTheCache) {
    FaultyVfs vfs;
    const int fd = vfs.create_truncate(at("a"));
    vfs.write_all(fd, at("a"), "hello");
    EXPECT_EQ(vfs.read_file(at("a")), "hello");  // cache view, pre-sync
    vfs.fdatasync(fd, at("a"));
    vfs.close(fd);
    EXPECT_TRUE(vfs.file_exists(at("a")));
    EXPECT_EQ(vfs.read_file(at("a")), "hello");
    EXPECT_THROW((void)vfs.read_file(at("missing")), VfsError);
}

TEST(ServeVfs, PowerCutDropsUnsyncedBytesAndUnsyncedNames) {
    DiskFaultPlan plan;
    plan.power_cut_keeps_prefix = false;  // clean cut: durable bytes only
    FaultyVfs vfs(plan);

    const int fd = vfs.create_truncate(at("wal"));
    vfs.write_all(fd, at("wal"), "durable");
    vfs.fdatasync(fd, at("wal"));
    vfs.fsync_parent_dir(at("wal"));  // name survives the cut
    vfs.write_all(fd, at("wal"), " volatile");

    const int never_synced = vfs.create_truncate(at("ghost"));
    vfs.write_all(never_synced, at("ghost"), "gone");

    vfs.power_cut();

    EXPECT_EQ(vfs.read_file(at("wal")), "durable");
    EXPECT_FALSE(vfs.file_exists(at("ghost")));  // creation never dirsynced
    // fds from before the cut are stale: writes through them must fail.
    EXPECT_THROW(vfs.write_all(fd, at("wal"), "x"), VfsError);
    vfs.close(fd);  // tolerated
    vfs.close(never_synced);
}

TEST(ServeVfs, RenameIsNotDurableUntilTheParentDirIsSynced) {
    DiskFaultPlan plan;
    plan.power_cut_keeps_prefix = false;
    FaultyVfs vfs(plan);

    auto put = [&vfs](const std::string& path, const std::string& bytes) {
        const int fd = vfs.create_truncate(path);
        vfs.write_all(fd, path, bytes);
        vfs.fsync(fd, path);
        vfs.close(fd);
    };
    put(at("target"), "old");
    vfs.fsync_parent_dir(at("target"));
    put(at("target.tmp"), "new");
    vfs.rename(at("target.tmp"), at("target"));
    EXPECT_EQ(vfs.read_file(at("target")), "new");  // visible in the cache

    vfs.power_cut();  // ...but the rename never reached the directory

    EXPECT_EQ(vfs.read_file(at("target")), "old");
}

TEST(ServeVfs, ScriptedFaultsFireAfterTheirSkipCountThenClear) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kWrite, 1, 1, EIO, /*transient=*/true);
    const int fd = vfs.create_truncate(at("f"));
    vfs.write_all(fd, at("f"), "first");               // skipped
    EXPECT_THROW(vfs.write_all(fd, at("f"), "second"), VfsError);  // fires
    vfs.write_all(fd, at("f"), "third");               // count exhausted
    vfs.clear_scripted_faults();
    vfs.write_all(fd, at("f"), "fourth");
    vfs.close(fd);
    EXPECT_EQ(vfs.stats().injected_errors, 1u);
}

TEST(ServeVfs, UnlinkIsIdempotentAndListDirIsSorted) {
    FaultyVfs vfs;
    for (const char* name : {"b", "a", "c"}) {
        const int fd = vfs.create_truncate(at(name));
        vfs.close(fd);
    }
    vfs.unlink(at("b"));
    vfs.unlink(at("b"));  // missing file is not an error
    const std::vector<std::string> names = vfs.list_dir(kDir);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "c");
}

// ------------------------------------------------------- retries & guards

TEST(ServeVfs, RetriesAbsorbTransientBurstsWithinTheBudget) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kWrite, 0, 2, EIO, /*transient=*/true);
    const int fd = vfs.create_truncate(at("f"));
    StorageRetryPolicy policy;
    policy.max_attempts = 4;
    std::uint64_t retries = 0;
    with_storage_retries(
        vfs, policy, [&] { vfs.write_all(fd, at("f"), "payload"); }, &retries);
    vfs.close(fd);
    EXPECT_EQ(retries, 2u);
    EXPECT_EQ(vfs.read_file(at("f")), "payload");
}

TEST(ServeVfs, RetriesGiveUpImmediatelyOnPersistentErrors) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kWrite, 0, -1, ENOSPC, /*transient=*/false);
    const int fd = vfs.create_truncate(at("f"));
    StorageRetryPolicy policy;
    std::uint64_t retries = 0;
    EXPECT_THROW(with_storage_retries(
                     vfs, policy, [&] { vfs.write_all(fd, at("f"), "x"); },
                     &retries),
                 VfsError);
    vfs.close(fd);
    EXPECT_EQ(retries, 0u);  // ENOSPC is not worth a single retry
    EXPECT_EQ(vfs.stats().injected_errors, 1u);
}

TEST(ServeVfs, FdGuardClosesUnlessReleased) {
    FaultyVfs vfs;
    int raw = -1;
    {
        VfsFdGuard guard(vfs, vfs.create_truncate(at("g")));
        vfs.write_all(guard.get(), at("g"), "x");
        raw = guard.release();
    }
    // Released: the fd is still live after the guard died.
    vfs.write_all(raw, at("g"), "y");
    vfs.close(raw);
    {
        VfsFdGuard guard(vfs, vfs.create_truncate(at("h")));
        raw = guard.get();
    }
    // Not released: the guard closed it; further writes must fail.
    EXPECT_THROW(vfs.write_all(raw, at("h"), "z"), VfsError);
}

// ------------------------------------------- atomic publish failure modes

TEST(ServeVfs, RenameFailureMidAtomicWriteLeavesNoTempAndNoTarget) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kRename, 0, -1, EIO, /*transient=*/false);
    EXPECT_THROW((void)WalWriter::create(vfs, at("wal-0.log"), 0, 7), VfsError);
    EXPECT_FALSE(vfs.file_exists(at("wal-0.log")));
    // The temp file was unlinked on the failure path.
    EXPECT_TRUE(vfs.list_dir(kDir).empty());
}

TEST(ServeVfs, TransientRenameFailureIsRetriedToSuccess) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kRename, 0, 1, EIO, /*transient=*/true);
    WalWriter wal = WalWriter::create(vfs, at("wal-0.log"), 0, 7);
    wal.close();
    EXPECT_TRUE(vfs.file_exists(at("wal-0.log")));
    EXPECT_TRUE(read_wal(vfs, at("wal-0.log"), WalReadMode::kStrict)
                    .records.empty());
}

TEST(ServeVfs, FsyncParentDirFailureFailsThePublish) {
    FaultyVfs vfs;
    vfs.script_fault(VfsOp::kDirSync, 0, -1, EIO, /*transient=*/false);
    EXPECT_THROW((void)WalWriter::create(vfs, at("wal-0.log"), 0, 7), VfsError);
}

// ------------------------------------------------- controller-level paths

core::Instance tiny_instance(std::size_t n) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2),
                                    0.90 + 0.004 * static_cast<double>(i % 10),
                                    static_cast<TimeSlot>((i * 7) / n),
                                    1 + static_cast<TimeSlot>(i % 3),
                                    1.0 + static_cast<double>((i * 11) % 17)));
    }
    return small_instance({0.98, 0.97, 0.99}, 10.0, 10, std::move(reqs));
}

TEST(ServeVfs, CheckpointRotationUnderEnospcDegradesThenRecovers) {
    const core::Instance inst = tiny_instance(12);
    FaultyVfs disk;
    ServeConfig cfg;
    cfg.data_dir = kDir;
    cfg.vfs = &disk;
    cfg.checkpoint_every = 1000;  // rotate only on explicit checkpoint()
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        controller.submit(i, inst.requests[i]);
        controller.drain();
    }
    const std::uint64_t digest = controller.state_digest();
    const auto admitted = controller.admitted_records();

    // The disk fills up right as the rotation starts.
    disk.script_fault(VfsOp::kWrite, 0, -1, ENOSPC, /*transient=*/false);
    EXPECT_THROW(controller.checkpoint(), StorageDegradedError);
    EXPECT_EQ(controller.storage_health(), StorageHealth::kDegraded);
    EXPECT_FALSE(controller.degraded_reason().empty());

    // Degraded mode refuses loudly but keeps serving admitted state.
    EXPECT_THROW(controller.submit(inst.requests.size(),
                                   inst.requests.front()),
                 StorageDegradedError);
    EXPECT_EQ(controller.state_digest(), digest);
    EXPECT_EQ(controller.admitted_records().size(), admitted.size());
    EXPECT_GE(controller.storage_stats().degraded_entries, 1u);
    EXPECT_GE(controller.storage_stats().degraded_refusals, 1u);

    // Recovery fails while the disk is still full...
    EXPECT_FALSE(controller.try_recover_storage());
    // ...and succeeds (with a full rotation as the writability proof)
    // once space frees up.
    disk.clear_scripted_faults();
    EXPECT_TRUE(controller.try_recover_storage());
    EXPECT_EQ(controller.storage_health(), StorageHealth::kHealthy);
    EXPECT_EQ(controller.storage_stats().recoveries, 1u);
    EXPECT_EQ(controller.state_digest(), digest);

    // Back in business: the next submit is accepted and durably logged.
    controller.submit(inst.requests.size(), inst.requests.front());
    controller.drain();
    EXPECT_EQ(controller.metrics().processed + controller.metrics().shed,
              inst.requests.size() + 1);
}

TEST(ServeVfs, ScrubberDetectsASingleFlippedBitInARetainedGeneration) {
    const core::Instance inst = tiny_instance(24);
    FaultyVfs disk;
    ServeConfig cfg;
    cfg.data_dir = kDir;
    cfg.vfs = &disk;
    cfg.checkpoint_every = 4;  // several retained generations
    cfg.retain_wals = true;
    AdmissionController controller(inst, core::Scheme::kOnsite, cfg);
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        controller.submit(i, inst.requests[i]);
        controller.drain();
    }
    ASSERT_TRUE(scrub_data_dir(disk, kDir).clean());

    // Flip one bit inside the record region of the oldest generation.
    std::string oldest;
    for (const std::string& name : disk.list_dir(kDir)) {
        if (name.starts_with("wal-") && name.ends_with(".log")) {
            oldest = at(name);
            break;
        }
    }
    ASSERT_FALSE(oldest.empty());
    ASSERT_GT(disk.read_file(oldest).size(), kWalHeaderSize + 8);
    disk.corrupt_durable_byte(oldest, kWalHeaderSize + 5, 0x04);

    const ScrubReport report = scrub_data_dir(disk, kDir);
    EXPECT_FALSE(report.clean());
    ASSERT_FALSE(report.findings.empty());
    EXPECT_EQ(report.findings.front().file, oldest);

    // Un-flip: the scrub is clean again (the report was not sticky).
    disk.corrupt_durable_byte(oldest, kWalHeaderSize + 5, 0x04);
    EXPECT_TRUE(scrub_data_dir(disk, kDir).clean());
}

// ------------------------------------------------------------- PosixVfs

TEST(ServeVfs, PosixVfsRoundTripsOnTheRealFilesystem) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "vfs_posix";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    Vfs& vfs = posix_vfs();
    const std::string tmp = (dir / "file.tmp").string();
    const std::string path = (dir / "file").string();

    const int fd = vfs.create_truncate(tmp);
    vfs.write_all(fd, tmp, "payload");
    vfs.fsync(fd, tmp);
    vfs.close(fd);
    vfs.rename(tmp, path);
    vfs.fsync_parent_dir(path);

    EXPECT_TRUE(vfs.file_exists(path));
    EXPECT_FALSE(vfs.file_exists(tmp));
    EXPECT_TRUE(vfs.dir_exists(dir.string()));
    EXPECT_EQ(vfs.read_file(path), "payload");
    const std::vector<std::string> names = vfs.list_dir(dir.string());
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "file");

    const int app = vfs.open_append(path);
    vfs.write_all(app, path, "!");
    vfs.fdatasync(app, path);
    vfs.ftruncate(app, path, 4);
    vfs.close(app);
    EXPECT_EQ(vfs.read_file(path), "payl");

    vfs.unlink(path);
    vfs.unlink(path);  // idempotent
    EXPECT_THROW((void)vfs.read_file(path), VfsError);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vnfr::serve
