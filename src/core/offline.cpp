#include "core/offline.hpp"

#include <string>

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "opt/presolve.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {

namespace {

/// Shared capacity-row construction: one <= row per (cloudlet, slot) that
/// has at least one potentially active placement. `demand(i, j)` gives the
/// per-slot compute units Y_ij would consume.
template <typename DemandFn>
void add_capacity_rows(const Instance& instance, OfflineModel& model, DemandFn demand) {
    const std::size_t m = instance.network.cloudlet_count();
    for (std::size_t j = 0; j < m; ++j) {
        for (TimeSlot t = 0; t < instance.horizon; ++t) {
            std::vector<std::pair<std::size_t, double>> terms;
            for (std::size_t i = 0; i < instance.requests.size(); ++i) {
                const workload::Request& r = instance.requests[i];
                if (!r.covers(t) || !model.y_vars[i][j]) continue;
                terms.emplace_back(*model.y_vars[i][j], demand(i, j));
            }
            if (terms.empty()) continue;
            model.lp.add_row(std::move(terms), opt::Relation::kLe,
                             instance.network.cloudlet(
                                          CloudletId{static_cast<std::int64_t>(j)})
                                 .capacity);
        }
    }
}

}  // namespace

OfflineModel build_onsite_model(const Instance& instance) {
    instance.validate();
    OfflineModel model;
    const std::size_t n = instance.requests.size();
    const std::size_t m = instance.network.cloudlet_count();

    model.x_vars.reserve(n);
    model.y_vars.assign(n, std::vector<std::optional<std::size_t>>(m));

    // Replica counts N_ij; Y_ij exists only where the cloudlet can satisfy
    // the requirement at all.
    std::vector<std::vector<int>> replicas(n, std::vector<int>(m, 0));
    for (std::size_t i = 0; i < n; ++i) {
        const workload::Request& r = instance.requests[i];
        const std::size_t x =
            model.lp.add_variable(r.payment, 1.0, "x" + std::to_string(i));
        model.x_vars.push_back(x);
        model.binaries.push_back(x);
        for (std::size_t j = 0; j < m; ++j) {
            const auto count = vnf::min_onsite_replicas(
                instance.network.cloudlet(CloudletId{static_cast<std::int64_t>(j)})
                    .reliability,
                instance.catalog.reliability(r.vnf), r.requirement);
            if (!count) continue;
            VNFR_CHECK(*count >= 1, "Eq. (3) replica count for request ", i,
                       " on cloudlet ", j);
            replicas[i][j] = *count;
            const std::size_t y = model.lp.add_variable(
                0.0, 1.0, "y" + std::to_string(i) + "_" + std::to_string(j));
            model.y_vars[i][j] = y;
            model.binaries.push_back(y);
        }
    }

    // Capacity (4): sum_i V_i[t] N_ij c(f_i) Y_ij <= cap_j.
    add_capacity_rows(instance, model, [&](std::size_t i, std::size_t j) {
        return replicas[i][j] * instance.catalog.compute_units(instance.requests[i].vnf);
    });

    // Assignment (5): sum_j Y_ij = X_i.
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < m; ++j) {
            if (model.y_vars[i][j]) terms.emplace_back(*model.y_vars[i][j], 1.0);
        }
        terms.emplace_back(model.x_vars[i], -1.0);
        model.lp.add_row(std::move(terms), opt::Relation::kEq, 0.0);
    }
    return model;
}

OfflineModel build_offsite_model(const Instance& instance, bool anchor_rejected_requests) {
    instance.validate();
    OfflineModel model;
    const std::size_t n = instance.requests.size();
    const std::size_t m = instance.network.cloudlet_count();

    model.x_vars.reserve(n);
    model.y_vars.assign(n, std::vector<std::optional<std::size_t>>(m));

    for (std::size_t i = 0; i < n; ++i) {
        const workload::Request& r = instance.requests[i];
        const std::size_t x =
            model.lp.add_variable(r.payment, 1.0, "x" + std::to_string(i));
        model.x_vars.push_back(x);
        model.binaries.push_back(x);
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t y = model.lp.add_variable(
                0.0, 1.0, "y" + std::to_string(i) + "_" + std::to_string(j));
            model.y_vars[i][j] = y;
            model.binaries.push_back(y);
        }
    }

    // Capacity (49): sum_i V_i[t] c(f_i) Y_ij <= cap_j.
    add_capacity_rows(instance, model, [&](std::size_t i, std::size_t) {
        return instance.catalog.compute_units(instance.requests[i].vnf);
    });

    // Reliability (50) and anchoring (51), in log space. a_ij < 0.
    for (std::size_t i = 0; i < n; ++i) {
        const workload::Request& r = instance.requests[i];
        const double vnf_rel = instance.catalog.reliability(r.vnf);
        std::vector<double> a(m);
        double lower_li = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            a[j] = vnf::offsite_log_failure(
                vnf_rel, instance.network.cloudlet(CloudletId{static_cast<std::int64_t>(j)})
                             .reliability);
            // Constraint (50) divides through these; a zero or positive
            // coefficient would silently invert the row's meaning.
            VNFR_CHECK(a[j] < 0.0, "offsite log-failure coefficient a[", i, "][", j, "]");
            lower_li += a[j];
        }
        const double log_target = common::log1m(r.requirement);
        VNFR_CHECK(log_target < 0.0, "requirement R_i must be positive for request ", i);

        // (50): sum_j a_ij Y_ij - ln(1-R_i) X_i <= 0.
        std::vector<std::pair<std::size_t, double>> meet;
        for (std::size_t j = 0; j < m; ++j) meet.emplace_back(*model.y_vars[i][j], a[j]);
        meet.emplace_back(model.x_vars[i], -log_target);
        model.lp.add_row(std::move(meet), opt::Relation::kLe, 0.0);

        // (51): sum_j a_ij Y_ij - L_i X_i >= 0 forces Y.. = 0 when X_i = 0.
        if (anchor_rejected_requests) {
            std::vector<std::pair<std::size_t, double>> anchor;
            for (std::size_t j = 0; j < m; ++j) {
                anchor.emplace_back(*model.y_vars[i][j], a[j]);
            }
            anchor.emplace_back(model.x_vars[i], -lower_li);
            model.lp.add_row(std::move(anchor), opt::Relation::kGe, 0.0);
        }
    }
    return model;
}

OfflineResult solve_offline(const Instance& instance, Scheme scheme,
                            const OfflineConfig& config) {
    // The offline solver only reports objective values, so the off-site
    // model omits the anchoring rows (see build_offsite_model).
    const OfflineModel model =
        scheme == Scheme::kOnsite
            ? build_onsite_model(instance)
            : build_offsite_model(instance, /*anchor_rejected_requests=*/false);
    OfflineResult out;

    // Presolve strips fixed columns and redundant rows before the simplex.
    const opt::PresolveResult pre = opt::presolve(model.lp);
    if (!pre.infeasible) {
        const opt::LpSolution relax = opt::solve_lp(pre.reduced, config.lp);
        if (relax.status == opt::SolveStatus::kOptimal) {
            out.lp_optimal = true;
            out.lp_bound = relax.objective + pre.objective_offset;
        }
    }

    if (config.run_ilp) {
        opt::BnbOptions bnb = config.bnb;
        bnb.lp_options = config.lp;
        const opt::IlpSolution ilp = opt::solve_ilp(model.lp, model.binaries, bnb);
        out.has_ilp = ilp.has_incumbent;
        out.ilp_value = ilp.objective;
        out.ilp_proven = ilp.proven_optimal;
        out.bnb_nodes = ilp.nodes_explored;
        // A proven B&B bound can tighten (never loosen) the LP bound.
        if (ilp.has_incumbent && out.lp_optimal) {
            out.lp_bound = std::min(out.lp_bound, ilp.best_bound);
        }
    }
    return out;
}

}  // namespace vnfr::core
