// Slot-stepped discrete-time simulation of an online scheduler.
//
// Walks the horizon T slot by slot, delivers each slot's arrivals to the
// scheduler (the online model of Section III.B: requests arrive at slot
// starts, one by one, future unknown), records a per-slot timeline, and can
// inject failures each slot to measure the availability actually delivered
// to admitted requests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace vnfr::sim {

struct SlotRecord {
    TimeSlot slot{0};
    std::size_t arrivals{0};
    std::size_t admitted{0};         ///< of this slot's arrivals
    std::size_t active_requests{0};  ///< admitted requests covering the slot
    double mean_utilization{0};      ///< across cloudlets at this slot
};

struct SimulatorConfig {
    /// Sample cloudlet/instance failures each slot for each active request.
    bool inject_failures{false};
    std::uint64_t failure_seed{0x5eed};
};

struct SimulationReport {
    core::ScheduleResult schedule;
    std::vector<SlotRecord> timeline;  ///< one record per slot
    /// Failure-injection tallies over (active request x slot) pairs; both 0
    /// when injection is disabled.
    std::size_t served_request_slots{0};
    std::size_t disrupted_request_slots{0};

    /// Empirical availability delivered across active request-slots.
    [[nodiscard]] double empirical_availability() const;
};

/// Runs `scheduler` over the instance. Requests must already be sorted by
/// arrival (Instance::validate enforces this).
SimulationReport simulate(const core::Instance& instance, core::OnlineScheduler& scheduler,
                          const SimulatorConfig& config = {});

}  // namespace vnfr::sim
