// Online schedulers for on-site service function chains: the primal-dual
// pricing of the paper's Algorithm 1 lifted to chains, and the
// reliability-greedy baseline.
//
// For a chain on cloudlet j the replica vector comes from
// min_chain_replicas; the dual admission price is
//   price_j = demand_j * sum_{t in window} lambda_tj,
// demand_j being the vector's total compute. Admission, placement and dual
// updates then follow Algorithm 1 with a = demand_j.
#pragma once

#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "edge/resource_ledger.hpp"
#include "sfc/chain.hpp"

namespace vnfr::sfc {

/// Interface mirroring core::OnlineScheduler for chain requests.
class ChainScheduler {
  public:
    virtual ~ChainScheduler() = default;
    virtual ChainDecision decide(const ChainRequest& request) = 0;
    [[nodiscard]] virtual const edge::ResourceLedger& ledger() const = 0;
    [[nodiscard]] virtual std::string_view name() const = 0;
};

struct ChainScheduleResult {
    std::vector<ChainDecision> decisions;
    double revenue{0};
    std::size_t admitted{0};
    double max_load_factor{0};
};

/// Feeds `requests` (arrival order) through a scheduler.
ChainScheduleResult run_chains(const core::Instance& instance,
                               const std::vector<ChainRequest>& requests,
                               ChainScheduler& scheduler);

struct ChainPrimalDualConfig {
    /// See OnsitePrimalDualConfig::dual_capacity_scale; 0 = auto.
    double dual_capacity_scale{0.0};
};

class ChainPrimalDual final : public ChainScheduler {
  public:
    /// Uses the instance's network and catalog; its (single-VNF) requests
    /// are ignored. Keeps a reference; caller keeps it alive.
    explicit ChainPrimalDual(const core::Instance& instance,
                             ChainPrimalDualConfig config = {});

    ChainDecision decide(const ChainRequest& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "chain-primal-dual"; }
    [[nodiscard]] double lambda(CloudletId j, TimeSlot t) const;

  private:
    const core::Instance& instance_;
    edge::ResourceLedger ledger_;
    double dual_scale_{1.0};
    std::vector<std::vector<double>> lambda_;
};

class ChainGreedy final : public ChainScheduler {
  public:
    explicit ChainGreedy(const core::Instance& instance);

    ChainDecision decide(const ChainRequest& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override { return "chain-greedy"; }

  private:
    const core::Instance& instance_;
    edge::ResourceLedger ledger_;
    std::vector<CloudletId> by_reliability_;
};

}  // namespace vnfr::sfc
