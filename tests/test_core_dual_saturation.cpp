// Regression test for the Eq. (34)/(67) dual-price saturation ceiling
// (core/dual_limits.hpp): a 10^6-request trace hammering one cloudlet
// with escalating payments must drive lambda to exactly
// kDualPriceCeiling — never to +inf, never through a contract failure —
// and the scheduler must keep functioning at the ceiling (modest
// payments priced out, huge payments still admitted).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dual_limits.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

constexpr std::size_t kRequests = 1'000'000;

/// One cloudlet with capacity large enough that admissions never stop;
/// the dual price is the only thing limiting the recursion.
Instance one_cloudlet_instance() {
    return small_instance({0.98}, 1e9, 2, {});
}

/// Payment of the i-th request: exponential ramp from 1e3 to 1e75, so
/// the additive dual term crosses the ceiling mid-run and the second
/// half of the trace exercises the saturated regime.
double ramp_payment(std::size_t i) {
    return std::pow(10.0, 3.0 + 72.0 * static_cast<double>(i) /
                              static_cast<double>(kRequests));
}

workload::Request hammer_request(std::size_t i, double payment) {
    return make_request(static_cast<std::int64_t>(i), 0, 0.90, 0, 1, payment);
}

TEST(DualSaturation, OnsiteMillionRequestSingleCloudletStaysFinite) {
    const Instance inst = one_cloudlet_instance();
    OnsitePrimalDual scheduler(inst);
    const CloudletId c0{0};

    std::size_t admitted = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
        const Decision d = scheduler.decide(hammer_request(i, ramp_payment(i)));
        admitted += d.admitted ? 1 : 0;
        if (i % 100'000 == 0) {
            const double lam = scheduler.lambda(c0, 0);
            ASSERT_TRUE(std::isfinite(lam)) << "request " << i;
            ASSERT_LE(lam, kDualPriceCeiling) << "request " << i;
        }
    }
    // Payments always dominate the (capped) price, so the whole ramp is
    // admitted and the recursion was driven as hard as possible.
    EXPECT_EQ(admitted, kRequests);
    EXPECT_EQ(scheduler.lambda(c0, 0), kDualPriceCeiling);  // saturated exactly
    for (const double delta : scheduler.deltas()) {
        ASSERT_TRUE(std::isfinite(delta));
    }

    // Still functional at the ceiling: a modest payment is priced out
    // (price == ceiling beats it), an astronomical one is admitted.
    const Decision modest =
        scheduler.decide(hammer_request(kRequests, 1e6));
    EXPECT_FALSE(modest.admitted);
    EXPECT_EQ(modest.reject_reason, RejectReason::kPricedOut);
    const Decision rich =
        scheduler.decide(hammer_request(kRequests + 1, 1e35));
    EXPECT_TRUE(rich.admitted);
}

TEST(DualSaturation, OffsiteMillionRequestSingleCloudletStaysFinite) {
    const Instance inst = one_cloudlet_instance();
    OffsitePrimalDual scheduler(inst);
    const CloudletId c0{0};

    std::size_t admitted = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
        const Decision d = scheduler.decide(hammer_request(i, ramp_payment(i)));
        admitted += d.admitted ? 1 : 0;
        if (i % 100'000 == 0) {
            const double lam = scheduler.lambda(c0, 0);
            ASSERT_TRUE(std::isfinite(lam)) << "request " << i;
            ASSERT_LE(lam, kDualPriceCeiling) << "request " << i;
        }
    }
    EXPECT_EQ(admitted, kRequests);
    EXPECT_EQ(scheduler.lambda(c0, 0), kDualPriceCeiling);

    const Decision modest =
        scheduler.decide(hammer_request(kRequests, 1e6));
    EXPECT_FALSE(modest.admitted);
    EXPECT_NE(modest.reject_reason, RejectReason::kNone);
    const Decision rich =
        scheduler.decide(hammer_request(kRequests + 1, 1e35));
    EXPECT_TRUE(rich.admitted);
}

}  // namespace
}  // namespace vnfr::core
