// Group-commit WAL tests: stage/commit unit semantics, torn-group
// recovery, and the full crash matrix — kill the controller at EVERY
// WAL-append point (batch boundaries and mid-batch alike) for batch
// sizes {1, 4, 32}, with torn tails layered on top, and require the
// recovered controller to match the uninterrupted baseline bit for bit.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "serve/admission_controller.hpp"
#include "serve/chaos_study.hpp"
#include "serve/wal.hpp"

namespace vnfr::serve {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

std::string fresh_dir(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

WalRecord decision_record(std::uint64_t seq, double payment) {
    WalRecord rec;
    rec.kind = WalRecordKind::kDecision;
    rec.seq = seq;
    rec.request = make_request(static_cast<std::int64_t>(seq), 0, 0.95, 0, 2, payment);
    rec.admitted = true;
    rec.sites = {core::Site{CloudletId{0}, 2}};
    return rec;
}

TEST(ServeGroupCommitWal, StagedRecordsStayInvisibleUntilCommit) {
    const std::string dir = fresh_dir("gc_stage");
    const std::string path = dir + "/wal-0.log";
    WalWriter writer = WalWriter::create(path, 0, 42);
    writer.stage(decision_record(0, 3.0));
    writer.stage(decision_record(1, 4.0));
    EXPECT_EQ(writer.staged_records(), 2u);
    // Nothing externalized yet: the file on disk is still just a header.
    EXPECT_TRUE(read_wal(path, WalReadMode::kStrict).records.empty());
    writer.commit();
    EXPECT_EQ(writer.staged_records(), 0u);
    const WalContents contents = read_wal(path, WalReadMode::kStrict);
    ASSERT_EQ(contents.records.size(), 2u);
    EXPECT_EQ(contents.records[0].seq, 0u);
    EXPECT_EQ(contents.records[1].seq, 1u);
}

TEST(ServeGroupCommitWal, AppendWhileStagedThrowsAndCommitIsIdempotent) {
    const std::string dir = fresh_dir("gc_mix");
    WalWriter writer = WalWriter::create(dir + "/wal-0.log", 0, 42);
    writer.commit();  // no-op on an empty stage
    writer.stage(decision_record(0, 1.0));
    EXPECT_THROW(writer.append(decision_record(1, 2.0)), std::logic_error);
    writer.commit();
    writer.commit();  // still a no-op
    const std::uint64_t at = writer.append(decision_record(1, 2.0));
    EXPECT_EQ(at, read_wal(writer.path(), WalReadMode::kStrict).records[1].file_offset);
}

TEST(ServeGroupCommitWal, StageReportsTheOffsetsCommitWillUse) {
    const std::string dir = fresh_dir("gc_offsets");
    const std::string path = dir + "/wal-0.log";
    WalWriter writer = WalWriter::create(path, 0, 42);
    const std::uint64_t first = writer.stage(decision_record(0, 1.0));
    const std::uint64_t second = writer.stage(decision_record(1, 2.0));
    EXPECT_LT(first, second);
    writer.commit();
    const WalContents contents = read_wal(path, WalReadMode::kStrict);
    ASSERT_EQ(contents.records.size(), 2u);
    EXPECT_EQ(contents.records[0].file_offset, first);
    EXPECT_EQ(contents.records[1].file_offset, second);
}

TEST(ServeGroupCommitWal, TornGroupWriteRecoversTheIntactPrefix) {
    // A crash during the single group write leaves whole records plus at
    // most one torn record at EOF — exactly what recover mode handles.
    const std::string dir = fresh_dir("gc_torn");
    const std::string path = dir + "/wal-0.log";
    {
        WalWriter writer = WalWriter::create(path, 0, 42);
        writer.stage(decision_record(0, 1.0));
        writer.stage(decision_record(1, 2.0));
        writer.stage(decision_record(2, 3.0));
        writer.commit();
    }
    const std::uint64_t full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 7);  // tear into record 2
    const WalContents contents = read_wal(path, WalReadMode::kRecover);
    ASSERT_EQ(contents.records.size(), 2u);
    EXPECT_GT(contents.bytes_discarded, 0u);
    EXPECT_EQ(contents.valid_size + contents.bytes_discarded, full - 7);
    // And the writer can resume on the clean prefix.
    WalWriter resumed = WalWriter::append_to(path, contents.valid_size);
    resumed.append(decision_record(2, 3.0));
    EXPECT_EQ(read_wal(path, WalReadMode::kStrict).records.size(), 3u);
}

core::Instance matrix_instance(std::size_t n) {
    std::vector<workload::Request> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const TimeSlot arrival = static_cast<TimeSlot>((i * 7) / n);
        const TimeSlot duration = 1 + static_cast<TimeSlot>(i % 3);
        const double payment = 1.0 + static_cast<double>((i * 11) % 17);
        reqs.push_back(make_request(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(i % 2),
                                    0.90 + 0.004 * static_cast<double>(i % 10), arrival,
                                    duration, payment));
    }
    return small_instance({0.98, 0.97, 0.99}, 10.0, 10, std::move(reqs));
}

ChaosStudyResult run_matrix(core::Scheme scheme, std::size_t group_commit,
                            const std::string& dir) {
    ChaosStudyConfig cfg;
    cfg.scheme = scheme;
    cfg.master_seed = 0xBA7C4ull;
    cfg.exhaustive_kill_points = true;  // every record: boundary + mid-batch
    cfg.checkpoint_every = 8;
    cfg.queue_capacity = 4;
    cfg.group_commit = group_commit;
    cfg.torn_tails = true;
    cfg.work_dir = dir;
    return run_chaos_study(matrix_instance(40), cfg);
}

void expect_matrix_ok(const ChaosStudyResult& result, std::size_t group_commit) {
    EXPECT_TRUE(result.ok()) << "failed trials: " << result.failed_trials;
    ASSERT_EQ(result.trials.size(), result.baseline_outcomes - 1);
    std::size_t boundary = 0;
    std::size_t mid = 0;
    std::size_t torn = 0;
    for (const ChaosTrial& trial : result.trials) {
        EXPECT_TRUE(trial.ok()) << "kill point " << trial.kill_after_records
                                << (trial.mid_batch ? " (mid-batch)" : " (boundary)");
        trial.mid_batch ? ++mid : ++boundary;
        if (trial.torn_tail_applied) ++torn;
    }
    // The matrix really covered both kinds of kill point and tore tails.
    EXPECT_GT(boundary, 0u);
    if (group_commit > 1) {
        EXPECT_GT(mid, 0u);
    }
    EXPECT_GT(torn, 0u);
}

TEST(ServeGroupCommitChaos, CrashMatrixBatch1) {
    const ChaosStudyResult r =
        run_matrix(core::Scheme::kOnsite, 1, fresh_dir("gc_matrix_1"));
    expect_matrix_ok(r, 1);
}

TEST(ServeGroupCommitChaos, CrashMatrixBatch4) {
    const ChaosStudyResult r =
        run_matrix(core::Scheme::kOnsite, 4, fresh_dir("gc_matrix_4"));
    expect_matrix_ok(r, 4);
}

TEST(ServeGroupCommitChaos, CrashMatrixBatch32) {
    const ChaosStudyResult r =
        run_matrix(core::Scheme::kOnsite, 32, fresh_dir("gc_matrix_32"));
    expect_matrix_ok(r, 32);
}

TEST(ServeGroupCommitChaos, CrashMatrixBatch4Offsite) {
    const ChaosStudyResult r =
        run_matrix(core::Scheme::kOffsite, 4, fresh_dir("gc_matrix_4_off"));
    expect_matrix_ok(r, 4);
}

TEST(ServeGroupCommitChaos, GroupSizeNeverChangesTheFinalState) {
    // Group commit only changes durability batching; the decided stream
    // (and therefore the digest, revenue, and admitted set) is invariant.
    const ChaosStudyResult b1 =
        run_matrix(core::Scheme::kOnsite, 1, fresh_dir("gc_invariant_1"));
    const ChaosStudyResult b4 =
        run_matrix(core::Scheme::kOnsite, 4, fresh_dir("gc_invariant_4"));
    const ChaosStudyResult b32 =
        run_matrix(core::Scheme::kOnsite, 32, fresh_dir("gc_invariant_32"));
    EXPECT_EQ(b1.baseline_digest, b4.baseline_digest);
    EXPECT_EQ(b1.baseline_digest, b32.baseline_digest);
    EXPECT_EQ(b1.baseline_metrics.revenue, b32.baseline_metrics.revenue);
    EXPECT_EQ(b1.baseline_metrics.shed_revenue, b32.baseline_metrics.shed_revenue);
}

}  // namespace
}  // namespace vnfr::serve
