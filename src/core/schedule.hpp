// Scheduling decisions and results shared by every algorithm.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "edge/resource_ledger.hpp"
#include "workload/request.hpp"

namespace vnfr::core {

struct Instance;

/// Where one request's VNF instances were placed. Under the on-site scheme
/// there is exactly one site with `replicas = N_ij`; under the off-site
/// scheme one site per selected cloudlet with `replicas = 1`.
struct Site {
    CloudletId cloudlet;
    int replicas{0};
};

struct Placement {
    RequestId request;
    std::vector<Site> sites;

    /// Total computing units this placement consumes per active slot, given
    /// the per-instance demand c(f_i).
    [[nodiscard]] double compute_per_slot(double per_instance) const;
};

/// Why a request was rejected (kNone when admitted).
enum class RejectReason {
    kNone,
    /// No cloudlet can ever satisfy the requirement (on-site: r(c) <= R_i
    /// everywhere; off-site: even the full cloudlet set falls short).
    kInfeasibleRequirement,
    /// Feasible in principle, but the dual prices exceed the payment.
    kPricedOut,
    /// Feasible and affordable, but no cloudlet has enough residual
    /// capacity over the request's window.
    kNoCapacity,
};

const char* to_string(RejectReason reason);

struct Decision {
    bool admitted{false};
    RejectReason reject_reason{RejectReason::kNone};
    Placement placement;  ///< meaningful only when admitted
};

/// Every online algorithm implements this. `decide` must be called exactly
/// once per request, in arrival order; the scheduler updates its internal
/// ledger/dual state as a side effect.
class OnlineScheduler {
  public:
    virtual ~OnlineScheduler() = default;

    virtual Decision decide(const workload::Request& request) = 0;

    /// The scheduler's resource accounting (for utilization/violation
    /// inspection after a run).
    [[nodiscard]] virtual const edge::ResourceLedger& ledger() const = 0;

    [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Outcome of replaying a full request sequence through a scheduler.
struct ScheduleResult {
    std::vector<Decision> decisions;  ///< parallel to Instance::requests
    double revenue{0};                ///< paper objective: sum of admitted payments
    std::size_t admitted{0};
    /// Peak usage-over-capacity across cloudlets and slots (0 unless the
    /// scheduler runs with CapacityPolicy::kRecord).
    double max_overshoot{0};
    /// Peak usage/capacity ratio across cloudlets and slots.
    double max_load_factor{0};
};

/// Feeds `instance.requests` (already in arrival order) one by one into the
/// scheduler and aggregates the outcome.
ScheduleResult run_online(const Instance& instance, OnlineScheduler& scheduler);

/// Acceptance ratio of a result given the instance size (0 for no requests).
double acceptance_ratio(const ScheduleResult& result, const Instance& instance);

/// Histogram of rejection reasons in a result (admitted requests are not
/// counted). Index with RejectReason casts.
struct RejectionBreakdown {
    std::size_t infeasible_requirement{0};
    std::size_t priced_out{0};
    std::size_t no_capacity{0};
};

RejectionBreakdown rejection_breakdown(const ScheduleResult& result);

}  // namespace vnfr::core
