file(REMOVE_RECURSE
  "CMakeFiles/vnfr_opt.dir/branch_and_bound.cpp.o"
  "CMakeFiles/vnfr_opt.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/vnfr_opt.dir/lp.cpp.o"
  "CMakeFiles/vnfr_opt.dir/lp.cpp.o.d"
  "CMakeFiles/vnfr_opt.dir/presolve.cpp.o"
  "CMakeFiles/vnfr_opt.dir/presolve.cpp.o.d"
  "CMakeFiles/vnfr_opt.dir/simplex.cpp.o"
  "CMakeFiles/vnfr_opt.dir/simplex.cpp.o.d"
  "libvnfr_opt.a"
  "libvnfr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnfr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
