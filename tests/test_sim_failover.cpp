#include "sim/failover_study.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/contracts.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "helpers.hpp"
#include "sim/availability_process.hpp"

namespace vnfr::sim {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(AvailabilityProcess, RejectsBadMttr) {
    const auto inst = small_instance({0.99}, 10.0, 5, {});
    EXPECT_THROW(AvailabilityProcess(inst, 0.5, 2.0, common::Rng(1)),
                 std::invalid_argument);
    EXPECT_THROW(AvailabilityProcess(inst, 2.0, 0.0, common::Rng(1)),
                 std::invalid_argument);
}

TEST(AvailabilityProcess, StationaryUpFractionMatchesReliability) {
    // Long-run fraction of up-slots of the Markov chain must converge to
    // the configured reliability, independent of the repair time.
    const auto inst = small_instance({0.9}, 10.0, 5, {});
    for (const double mttr : {1.0, 3.0, 8.0}) {
        AvailabilityProcess process(inst, mttr, 2.0, common::Rng(7));
        std::size_t up = 0;
        const std::size_t slots = 200000;
        for (std::size_t t = 0; t < slots; ++t) {
            process.step();
            if (process.cloudlet_up(CloudletId{0})) ++up;
        }
        EXPECT_NEAR(static_cast<double>(up) / static_cast<double>(slots), 0.9, 0.01)
            << "mttr=" << mttr;
    }
}

TEST(AvailabilityProcess, LongerMttrMeansLongerOutages) {
    const auto inst = small_instance({0.9}, 10.0, 5, {});
    const auto mean_outage_length = [&](double mttr) {
        AvailabilityProcess process(inst, mttr, 2.0, common::Rng(11));
        std::size_t outages = 0;
        std::size_t down_slots = 0;
        bool was_up = true;
        for (std::size_t t = 0; t < 200000; ++t) {
            process.step();
            const bool up = process.cloudlet_up(CloudletId{0});
            if (!up) {
                ++down_slots;
                if (was_up) ++outages;
            }
            was_up = up;
        }
        return outages == 0 ? 0.0
                            : static_cast<double>(down_slots) / static_cast<double>(outages);
    };
    EXPECT_NEAR(mean_outage_length(2.0), 2.0, 0.3);
    EXPECT_NEAR(mean_outage_length(6.0), 6.0, 0.9);
}

TEST(AvailabilityProcess, ServingReplicaPrefersFirstSite) {
    const auto inst = small_instance({0.999, 0.999}, 10.0, 5,
                                     {make_request(0, 0, 0.9, 0, 2, 5.0)});
    AvailabilityProcess process(inst, 4.0, 2.0, common::Rng(3));
    const core::Placement p{RequestId{0},
                            {core::Site{CloudletId{0}, 2}, core::Site{CloudletId{1}, 1}}};
    const std::size_t handle = process.track(inst.requests[0], p);
    const auto serving = process.serving_replica(handle);
    // With everything near-certainly up at steady state, site 0 serves.
    if (serving.valid()) {
        EXPECT_LE(serving.site, 1u);
    }
    EXPECT_EQ(process.site_cloudlet(handle, 0), CloudletId{0});
    EXPECT_EQ(process.site_cloudlet(handle, 1), CloudletId{1});
}

TEST(AvailabilityProcess, TrackValidatesPlacements) {
    const auto inst = small_instance({0.99}, 10.0, 5, {make_request(0, 0, 0.9, 0, 2, 5.0)});
    AvailabilityProcess process(inst, 4.0, 2.0, common::Rng(3));
    const core::Placement bad_cloudlet{RequestId{0}, {core::Site{CloudletId{9}, 1}}};
    EXPECT_THROW(process.track(inst.requests[0], bad_cloudlet), std::invalid_argument);
    const core::Placement bad_replicas{RequestId{0}, {core::Site{CloudletId{0}, 0}}};
    EXPECT_THROW(process.track(inst.requests[0], bad_replicas), std::invalid_argument);
}

TEST(FailoverStudy, AccountingIsConsistent) {
    common::Rng rng(401);
    const core::Instance inst = random_instance(rng, 80, 4, 15, 20, 40);
    core::OffsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    const FailoverReport report = run_failover_study(inst, result.decisions);
    EXPECT_EQ(report.served_slots + report.disrupted_slots, report.request_slots);
    EXPECT_GT(report.request_slots, 0u);
    EXPECT_GE(report.availability(), 0.0);
    EXPECT_LE(report.availability(), 1.0);
}

TEST(FailoverStudy, DeterministicBySeed) {
    common::Rng rng(403);
    const core::Instance inst = random_instance(rng, 60, 3, 12);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    FailoverConfig cfg;
    cfg.seed = 99;
    const FailoverReport a = run_failover_study(inst, result.decisions, cfg);
    const FailoverReport b = run_failover_study(inst, result.decisions, cfg);
    EXPECT_EQ(a.served_slots, b.served_slots);
    EXPECT_EQ(a.local_failovers, b.local_failovers);
    EXPECT_EQ(a.remote_failovers, b.remote_failovers);
    EXPECT_EQ(a.outages, b.outages);
}

TEST(FailoverStudy, OnsitePlacementsNeverFailOverRemotely) {
    // Single-site placements have nowhere remote to go: all failovers are
    // local replica switches.
    common::Rng rng(405);
    const core::Instance inst = random_instance(rng, 100, 4, 15, 20, 40);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    const FailoverReport report = run_failover_study(inst, result.decisions);
    EXPECT_EQ(report.remote_failovers, 0u);
}

TEST(FailoverStudy, OffsiteSurvivesCloudletOutagesBetter) {
    // Same workload under both schemes with bursty cloudlet failures: the
    // off-site schedule must deliver at least as high availability (it is
    // the paper's core motivation for geographic redundancy).
    common::Rng rng(407);
    const core::Instance inst = random_instance(rng, 120, 4, 15, 30, 50);
    core::OnsitePrimalDual onsite(inst);
    core::OffsitePrimalDual offsite(inst);
    const core::ScheduleResult on_result = core::run_online(inst, onsite);
    const core::ScheduleResult off_result = core::run_online(inst, offsite);
    FailoverConfig cfg;
    cfg.cloudlet_mttr_slots = 6.0;  // long cloudlet outages
    const FailoverReport on_report = run_failover_study(inst, on_result.decisions, cfg);
    const FailoverReport off_report = run_failover_study(inst, off_result.decisions, cfg);
    EXPECT_GT(off_report.availability(), on_report.availability() - 0.005);
    // And it does so by using remote failovers, which on-site cannot.
    EXPECT_GT(off_report.remote_failovers, 0u);
}

TEST(FailoverStudy, SizeMismatchThrows) {
    common::Rng rng(409);
    const core::Instance inst = random_instance(rng, 10, 2, 8);
    EXPECT_THROW(run_failover_study(inst, {}), std::invalid_argument);
}

TEST(FailoverStudy, RejectsNonPositiveOrNonFiniteMttr) {
    common::Rng rng(411);
    const core::Instance inst = random_instance(rng, 10, 2, 8);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    for (const double bad :
         {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        FailoverConfig cfg;
        cfg.cloudlet_mttr_slots = bad;
        EXPECT_THROW(run_failover_study(inst, result.decisions, cfg),
                     common::ContractViolation)
            << "cloudlet_mttr_slots=" << bad;
        cfg = FailoverConfig{};
        cfg.instance_mttr_slots = bad;
        EXPECT_THROW(run_failover_study(inst, result.decisions, cfg),
                     common::ContractViolation)
            << "instance_mttr_slots=" << bad;
    }
}

TEST(FailoverStudy, ReplicationsRejectZero) {
    common::Rng rng(413);
    const core::Instance inst = random_instance(rng, 10, 2, 8);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    FailoverStudyConfig cfg;
    cfg.replications = 0;
    EXPECT_THROW(run_failover_replications(inst, result.decisions, cfg),
                 common::ContractViolation);
}

TEST(FailoverStudy, ReplicationsRejectProcessSeedOverride) {
    // FailoverConfig::seed is a single-run knob; the Monte-Carlo path seeds
    // every replication from master_seed. Setting the wrong knob used to be
    // silently ignored — now it is an error.
    common::Rng rng(415);
    const core::Instance inst = random_instance(rng, 10, 2, 8);
    core::OnsitePrimalDual scheduler(inst);
    const core::ScheduleResult result = core::run_online(inst, scheduler);
    FailoverStudyConfig cfg;
    cfg.process.seed = 99;
    EXPECT_THROW(run_failover_replications(inst, result.decisions, cfg),
                 std::invalid_argument);
    // Seeding through the supported knob works.
    cfg = FailoverStudyConfig{};
    cfg.master_seed = 99;
    cfg.replications = 2;
    EXPECT_NO_THROW(run_failover_replications(inst, result.decisions, cfg));
}

}  // namespace
}  // namespace vnfr::sim
