#include "common/math.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vnfr::common {

bool almost_equal(double a, double b, double rel_tol, double abs_tol) {
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol) return true;
    return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double log1m(double x) {
    if (x < 0.0 || x >= 1.0) throw std::domain_error("log1m: x outside [0, 1)");
    return std::log1p(-x);
}

double one_minus_exp(double s) {
    if (s > 0.0) throw std::domain_error("one_minus_exp: s > 0");
    return -std::expm1(s);
}

double at_least_one(double p, int k) {
    if (p < 0.0 || p > 1.0) throw std::domain_error("at_least_one: p outside [0, 1]");
    if (k < 0) throw std::domain_error("at_least_one: negative k");
    if (k == 0) return 0.0;
    if (p >= 1.0) return 1.0;
    // 1 - (1-p)^k = -expm1(k * log1p(-p))
    return -std::expm1(static_cast<double>(k) * std::log1p(-p));
}

double at_least_one_of(std::span<const double> probabilities) {
    double log_all_fail = 0.0;
    for (const double p : probabilities) {
        if (p < 0.0 || p > 1.0)
            throw std::domain_error("at_least_one_of: probability outside [0, 1]");
        if (p >= 1.0) return 1.0;
        log_all_fail += std::log1p(-p);
    }
    return -std::expm1(log_all_fail);
}

double require_open_unit(double p, const char* name) {
    if (!(p > 0.0) || !(p < 1.0)) {
        throw std::invalid_argument(std::string(name) + " must lie strictly in (0, 1), got " +
                                    std::to_string(p));
    }
    return p;
}

}  // namespace vnfr::common
