#include "sim/recovery_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "edge/resource_ledger.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::sim {

const char* to_string(RecoveryPolicy policy) {
    switch (policy) {
        case RecoveryPolicy::kNone: return "none";
        case RecoveryPolicy::kLocalRespawn: return "local-respawn";
        case RecoveryPolicy::kRemoteMigrate: return "remote-migrate";
        case RecoveryPolicy::kReadmit: return "readmit";
    }
    throw std::invalid_argument("to_string: unknown RecoveryPolicy");
}

namespace {

constexpr double kAvailSlack = 1e-12;

struct ReplicaState {
    bool alive{false};
    TimeSlot ready_at{0};        ///< serving only from this slot on
    TimeSlot reserved_from{0};   ///< start of the live ledger reservation
    TimeSlot reserved_until{0};  ///< end of the live ledger reservation
    /// Serving only while t < expires_at. A re-admission hands service over:
    /// old replicas expire exactly when the new placement becomes ready.
    TimeSlot expires_at{0};
    int retries{0};
    TimeSlot next_attempt{0};    ///< respawn backoff gate
};

struct SiteState {
    CloudletId cloudlet;
    std::vector<ReplicaState> replicas;
};

struct RequestState {
    std::size_t index{0};  ///< into Instance::requests / decisions
    std::vector<SiteState> sites;
    bool shed{false};
    int recover_retries{0};  ///< migrate/readmit attempts (per request)
    TimeSlot next_recover_attempt{0};
    std::size_t window_slots{0};
    std::size_t served{0};
    bool accounted{false};      ///< at least one slot accounted
    bool was_serving{false};
    TimeSlot disruption_start{-1};
    std::ptrdiff_t last_site{-1};
    CloudletId last_cloudlet{};
};

/// The per-slot fault-tolerance loop. Single-threaded and RNG-free: all
/// randomness was frozen into the FaultSchedule.
class RecoveryEngine {
  public:
    RecoveryEngine(const core::Instance& instance,
                   const std::vector<core::Decision>& decisions,
                   const RecoveryConfig& config)
        : instance_(instance),
          decisions_(decisions),
          config_(config),
          ledger_(instance.network.capacities(), instance.horizon,
                  edge::CapacityPolicy::kEnforce),
          down_until_(instance.network.cloudlet_count(), 0),
          states_(decisions.size()) {
        VNFR_CHECK(config.max_retries >= 0, "max_retries must be >= 0");
        VNFR_CHECK(config.respawn_delay_slots >= 0, "respawn_delay_slots must be >= 0");
        VNFR_CHECK(config.retry_backoff_slots >= 1, "retry_backoff_slots must be >= 1");
        for (std::size_t i = 0; i < decisions.size(); ++i) {
            if (!decisions[i].admitted) continue;
            const workload::Request& req = instance.requests[i];
            const double compute = instance.catalog.compute_units(req.vnf);
            RequestState& state = states_[i];
            state.index = i;
            for (const core::Site& site : decisions[i].placement.sites) {
                SiteState s;
                s.cloudlet = site.cloudlet;
                for (int k = 0; k < site.replicas; ++k) {
                    if (!ledger_.reserve(site.cloudlet, req.arrival, req.end(), compute))
                        throw std::invalid_argument(
                            "run_recovery_study: schedule violates cloudlet capacity "
                            "(pure Algorithm 1 schedules are not replayable)");
                    ReplicaState r;
                    r.alive = true;
                    r.ready_at = req.arrival;
                    r.reserved_from = req.arrival;
                    r.reserved_until = req.end();
                    r.expires_at = req.end();
                    s.replicas.push_back(r);
                }
                state.sites.push_back(std::move(s));
            }
        }
    }

    RecoveryReport run(const FaultSchedule& schedule) {
        std::size_t next_event = 0;
        std::size_t next_request = 0;
        for (TimeSlot t = 0; t < instance_.horizon; ++t) {
            while (next_request < instance_.requests.size() &&
                   instance_.requests[next_request].arrival == t) {
                if (decisions_[next_request].admitted) active_.push_back(next_request);
                ++next_request;
            }
            // Lapse handed-over replicas (their reservations were already
            // trimmed to the handover point; no release due).
            for (const std::size_t i : active_) {
                for (SiteState& site : states_[i].sites) {
                    for (ReplicaState& r : site.replicas) {
                        if (r.alive && t >= r.expires_at) r.alive = false;
                    }
                }
            }
            while (next_event < schedule.events.size() &&
                   schedule.events[next_event].slot == t) {
                apply_event(schedule.events[next_event], t);
                ++next_event;
            }
            if (config_.policy != RecoveryPolicy::kNone) {
                for (const std::size_t i : active_) recover(states_[i], t);
            }
            for (const std::size_t i : active_) account(states_[i], t);
            audit_capacity(t);
            retire(t);
        }
        return report_;
    }

  private:
    [[nodiscard]] bool cloudlet_up(CloudletId c, TimeSlot t) const {
        return t >= down_until_[c.index()];
    }

    [[nodiscard]] const workload::Request& request_of(const RequestState& s) const {
        return instance_.requests[s.index];
    }

    [[nodiscard]] double compute_of(const RequestState& s) const {
        return instance_.catalog.compute_units(request_of(s).vnf);
    }

    void kill_replica(RequestState& state, SiteState& site, ReplicaState& replica,
                      TimeSlot t) {
        replica.alive = false;
        const TimeSlot begin = std::max(t, replica.reserved_from);
        if (begin < replica.reserved_until)
            ledger_.release(site.cloudlet, begin, replica.reserved_until,
                            compute_of(state));
        ++report_.instances_lost;
    }

    void crash_cloudlet(CloudletId c, TimeSlot t, TimeSlot down_slots) {
        down_until_[c.index()] =
            std::max(down_until_[c.index()], static_cast<TimeSlot>(t + down_slots));
        // Hardware reboots wipe instance state: every replica hosted on the
        // cloudlet is lost, not just unreachable.
        for (const std::size_t i : active_) {
            RequestState& state = states_[i];
            if (state.shed) continue;
            for (SiteState& site : state.sites) {
                if (site.cloudlet != c) continue;
                for (ReplicaState& replica : site.replicas) {
                    if (replica.alive) kill_replica(state, site, replica, t);
                }
            }
        }
    }

    void apply_event(const FaultEvent& e, TimeSlot t) {
        switch (e.kind) {
            case FaultKind::kCloudletCrash:
                ++report_.cloudlet_crashes;
                crash_cloudlet(e.cloudlet, t, e.down_slots);
                break;
            case FaultKind::kRackFailure: {
                ++report_.rack_failures;
                for (std::size_t j = 0; j < e.span; ++j) {
                    const CloudletId c{e.cloudlet.value + static_cast<std::int64_t>(j)};
                    if (c.index() < down_until_.size()) crash_cloudlet(c, t, e.down_slots);
                }
                break;
            }
            case FaultKind::kTransientBlip:
                ++report_.transient_blips;
                down_until_[e.cloudlet.index()] =
                    std::max(down_until_[e.cloudlet.index()],
                             static_cast<TimeSlot>(t + 1));
                break;
            case FaultKind::kInstanceCrash: {
                if (e.request_index >= states_.size()) break;
                RequestState& state = states_[e.request_index];
                if (!decisions_[e.request_index].admitted || state.shed ||
                    !request_of(state).covers(t)) {
                    break;
                }
                // Address the replica slot in the *current* layout; after a
                // re-admission reshaped the placement the slot may be gone.
                if (e.site >= state.sites.size()) break;
                SiteState& site = state.sites[e.site];
                if (e.replica >= site.replicas.size()) break;
                ReplicaState& replica = site.replicas[e.replica];
                if (!replica.alive) break;
                ++report_.instance_crashes;
                kill_replica(state, site, replica, t);
                break;
            }
        }
    }

    /// Analytic availability of the live placement: per site
    /// r(c_j)(1 - (1 - r(f_i))^{alive_j}) combined across sites by Eq. 10.
    /// Pending respawns count — they are already paid for and on the way,
    /// so they must not re-trigger recovery every slot of their spin-up.
    [[nodiscard]] double live_availability(const RequestState& state) const {
        const double vnf_rel = instance_.catalog.reliability(request_of(state).vnf);
        double fail = 1.0;
        for (const SiteState& site : state.sites) {
            int alive = 0;
            for (const ReplicaState& r : site.replicas) {
                if (r.alive) ++alive;
            }
            if (alive == 0) continue;
            const double rel = instance_.network.cloudlet(site.cloudlet).reliability;
            fail *= 1.0 - vnf::onsite_availability(rel, vnf_rel, alive);
        }
        return VNFR_CHECK_PROB(1.0 - fail);
    }

    /// True when the request would be counted as served at `t` (the same
    /// scan account() performs): some up cloudlet hosts a live replica that
    /// has finished spinning up and has not handed service over yet.
    [[nodiscard]] bool serving_now(const RequestState& state, TimeSlot t) const {
        if (state.shed) return false;
        for (const SiteState& site : state.sites) {
            if (!cloudlet_up(site.cloudlet, t)) continue;
            for (const ReplicaState& r : site.replicas) {
                if (r.alive && r.ready_at <= t && t < r.expires_at) return true;
            }
        }
        return false;
    }

    /// Slots the request stands to gain if a recovery action lands now: the
    /// remainder of its window past the spin-up delay — and zero while it is
    /// still serving, because then recovery only restores redundancy and
    /// shedding a serving victim for redundancy is a pure availability loss.
    [[nodiscard]] std::size_t shed_gain_slots(const RequestState& state, TimeSlot t) const {
        if (serving_now(state, t)) return 0;
        const TimeSlot ready = t + config_.respawn_delay_slots;
        const TimeSlot end = request_of(state).end();
        return end > ready ? static_cast<std::size_t>(end - ready) : 0;
    }

    /// Serving slots a victim would lose if shed at `t`: the rest of its
    /// committed service (capped by handover expiries already in place).
    [[nodiscard]] std::size_t victim_loss_slots(const RequestState& cand, TimeSlot t) const {
        TimeSlot last = t;
        for (const SiteState& site : cand.sites) {
            for (const ReplicaState& r : site.replicas) {
                if (r.alive) last = std::max(last, r.expires_at);
            }
        }
        return static_cast<std::size_t>(last - t);
    }

    /// Tears the whole request down and books the lost revenue. The request
    /// stays in the active set so its remaining window keeps counting as
    /// disrupted — shedding must never inflate availability.
    void shed(RequestState& state, TimeSlot t) {
        for (SiteState& site : state.sites) {
            for (ReplicaState& replica : site.replicas) {
                if (!replica.alive) continue;
                replica.alive = false;
                const TimeSlot begin = std::max(t, replica.reserved_from);
                if (begin < replica.reserved_until)
                    ledger_.release(site.cloudlet, begin, replica.reserved_until,
                                    compute_of(state));
            }
        }
        state.shed = true;
        ++report_.shed_requests;
        report_.shed_revenue += request_of(state).payment;
    }

    /// reserve() with graceful degradation: when the reservation does not
    /// fit, shed active requests paying less than `payment` that hold live
    /// replicas on `c` — lowest payment first, and only if the freed space
    /// actually makes the reservation fit (no victim is shed for nothing).
    ///
    /// Two guards keep degradation dominance-safe (recovery must never
    /// deliver less availability than doing nothing):
    ///   * `gain_slots` is 0 while the beneficiary is still serving, which
    ///     disables shedding entirely — redundancy repair may only use free
    ///     capacity;
    ///   * each committed victim set must lose strictly fewer slots than the
    ///     beneficiary stands to gain, both in absolute slots (aggregate
    ///     availability) and normalized by window length (mean delivered
    ///     R_i). Victims whose remaining window would break the budget are
    ///     skipped in favour of the next-cheapest one.
    bool reserve_with_shedding(CloudletId c, TimeSlot begin, TimeSlot end, double amount,
                               double payment, std::size_t self, TimeSlot t,
                               std::size_t gain_slots) {
        if (ledger_.reserve(c, begin, end, amount)) return true;
        if (!config_.allow_shedding || gain_slots == 0) return false;
        const double gain_ratio =
            static_cast<double>(gain_slots) /
            static_cast<double>(request_of(states_[self]).duration);

        struct Victim {
            std::size_t index;
            double payment;
        };
        std::vector<Victim> victims;
        for (const std::size_t i : active_) {
            const RequestState& cand = states_[i];
            if (i == self || cand.shed) continue;
            const double cand_payment = request_of(cand).payment;
            if (cand_payment >= payment) continue;
            bool holds = false;
            for (const SiteState& site : cand.sites) {
                if (site.cloudlet != c) continue;
                for (const ReplicaState& r : site.replicas) {
                    if (r.alive && std::max(t, r.reserved_from) < r.reserved_until) {
                        holds = true;
                    }
                }
            }
            if (holds) victims.push_back({i, cand_payment});
        }
        std::sort(victims.begin(), victims.end(), [](const Victim& a, const Victim& b) {
            if (a.payment != b.payment) return a.payment < b.payment;
            return a.index < b.index;
        });

        // Dry-run: how much usage each victim set would free on `c` per
        // slot of [begin, end); commit only when a set makes it fit while
        // staying inside the slot budgets.
        std::vector<double> freed(static_cast<std::size_t>(end - begin), 0.0);
        const auto fits_with_freed = [&] {
            for (TimeSlot s = begin; s < end; ++s) {
                const double residual = ledger_.residual(c, s) +
                                        freed[static_cast<std::size_t>(s - begin)];
                if (residual + 1e-9 < amount) return false;
            }
            return true;
        };
        std::vector<std::size_t> chosen;
        std::size_t lost_slots = 0;
        double lost_ratio = 0.0;
        bool enough = false;
        for (const Victim& v : victims) {
            const RequestState& cand = states_[v.index];
            const std::size_t loss = victim_loss_slots(cand, t);
            const double ratio = static_cast<double>(loss) /
                                 static_cast<double>(request_of(cand).duration);
            if (lost_slots + loss >= gain_slots || lost_ratio + ratio >= gain_ratio) {
                continue;  // this victim would cost more than recovery gains
            }
            const double cand_compute = compute_of(cand);
            for (const SiteState& site : cand.sites) {
                if (site.cloudlet != c) continue;
                for (const ReplicaState& r : site.replicas) {
                    if (!r.alive) continue;
                    const TimeSlot lo = std::max({begin, t, r.reserved_from});
                    const TimeSlot hi = std::min(end, r.reserved_until);
                    for (TimeSlot s = lo; s < hi; ++s) {
                        freed[static_cast<std::size_t>(s - begin)] += cand_compute;
                    }
                }
            }
            lost_slots += loss;
            lost_ratio += ratio;
            chosen.push_back(v.index);
            if (fits_with_freed()) {
                enough = true;
                break;
            }
        }
        if (!enough) return false;
        for (const std::size_t v : chosen) shed(states_[v], t);
        VNFR_CHECK(ledger_.reserve(c, begin, end, amount),
                   "shedding freed capacity but the reservation still failed");
        return true;
    }

    [[nodiscard]] TimeSlot backoff_until(TimeSlot t, int failures) const {
        const int shift = std::min(failures - 1, 6);
        return t + (config_.retry_backoff_slots << shift);
    }

    /// Candidate cloudlets for off-site style recovery: up at `t`, not
    /// already hosting live replicas of the request, ordered exactly like
    /// Algorithm 2's zero-dual scan (reliability descending, id ascending).
    [[nodiscard]] std::vector<CloudletId> surviving_candidates(const RequestState& state,
                                                               TimeSlot t) const {
        std::vector<CloudletId> out;
        for (std::size_t j = 0; j < instance_.network.cloudlet_count(); ++j) {
            const CloudletId c{static_cast<std::int64_t>(j)};
            if (!cloudlet_up(c, t)) continue;
            bool hosts_live = false;
            for (const SiteState& site : state.sites) {
                if (site.cloudlet != c) continue;
                for (const ReplicaState& r : site.replicas) {
                    if (r.alive) hosts_live = true;
                }
            }
            if (!hosts_live) out.push_back(c);
        }
        std::sort(out.begin(), out.end(), [&](CloudletId a, CloudletId b) {
            const double ra = instance_.network.cloudlet(a).reliability;
            const double rb = instance_.network.cloudlet(b).reliability;
            // vnfr-lint: allow(float-eq) exact tie-break for a deterministic order
            if (ra != rb) return ra > rb;
            return a < b;
        });
        return out;
    }

    void recover(RequestState& state, TimeSlot t) {
        if (state.shed) return;
        switch (config_.policy) {
            case RecoveryPolicy::kNone: return;
            case RecoveryPolicy::kLocalRespawn: respawn_pass(state, t); return;
            case RecoveryPolicy::kRemoteMigrate: migrate_pass(state, t); return;
            case RecoveryPolicy::kReadmit: readmit_pass(state, t); return;
        }
    }

    void respawn_pass(RequestState& state, TimeSlot t) {
        const workload::Request& req = request_of(state);
        if (t >= req.end()) return;  // final slot already played out
        const double compute = compute_of(state);
        const std::size_t gain = shed_gain_slots(state, t);
        for (SiteState& site : state.sites) {
            if (!cloudlet_up(site.cloudlet, t)) continue;  // wait for the reboot
            for (ReplicaState& replica : site.replicas) {
                if (replica.alive) continue;
                if (replica.retries >= config_.max_retries) continue;
                if (t < replica.next_attempt) continue;
                if (reserve_with_shedding(site.cloudlet, t, req.end(), compute,
                                          req.payment, state.index, t, gain)) {
                    replica.alive = true;
                    replica.reserved_from = t;
                    replica.reserved_until = req.end();
                    replica.expires_at = req.end();
                    replica.ready_at = t + config_.respawn_delay_slots;
                    replica.retries = 0;
                    ++report_.local_respawns;
                } else {
                    ++replica.retries;
                    replica.next_attempt = backoff_until(t, replica.retries);
                    ++report_.failed_recoveries;
                }
            }
        }
    }

    void migrate_pass(RequestState& state, TimeSlot t) {
        const workload::Request& req = request_of(state);
        if (t >= req.end()) return;
        if (live_availability(state) + kAvailSlack >= req.requirement) return;
        if (state.recover_retries >= config_.max_retries) return;
        if (t < state.next_recover_attempt) return;

        const double compute = compute_of(state);
        const double vnf_rel = instance_.catalog.reliability(req.vnf);
        const std::size_t gain = shed_gain_slots(state, t);
        double avail = live_availability(state);
        bool met = false;
        for (const CloudletId c : surviving_candidates(state, t)) {
            if (!reserve_with_shedding(c, t, req.end(), compute, req.payment,
                                       state.index, t, gain)) {
                continue;  // no room there; Algorithm 2's scan moves on
            }
            SiteState site;
            site.cloudlet = c;
            ReplicaState replica;
            replica.alive = true;
            replica.reserved_from = t;
            replica.reserved_until = req.end();
            replica.expires_at = req.end();
            replica.ready_at = t + config_.respawn_delay_slots;
            site.replicas.push_back(replica);
            state.sites.push_back(std::move(site));
            const double rel = instance_.network.cloudlet(c).reliability;
            avail = 1.0 - (1.0 - avail) * (1.0 - vnf_rel * rel);
            if (avail + kAvailSlack >= req.requirement) {
                met = true;
                break;
            }
        }
        if (met) {
            state.recover_retries = 0;
            ++report_.remote_migrations;
        } else {
            // Any sites added on the way stay — partial redundancy beats
            // none — but the attempt counts as failed and backs off.
            ++state.recover_retries;
            state.next_recover_attempt = backoff_until(t, state.recover_retries);
            ++report_.failed_recoveries;
        }
    }

    void readmit_pass(RequestState& state, TimeSlot t) {
        const workload::Request& req = request_of(state);
        if (t >= req.end()) return;
        if (live_availability(state) + kAvailSlack >= req.requirement) return;
        if (state.recover_retries >= config_.max_retries) return;
        if (t < state.next_recover_attempt) return;

        const double compute = compute_of(state);
        const double vnf_rel = instance_.catalog.reliability(req.vnf);

        // The live scheduler's per-request choice (as in HybridPrimalDual):
        // cheapest of the on-site Eq. 3 placement and the off-site Eq. 10
        // set over the surviving, capacity-checked cloudlets.
        struct Option {
            std::vector<core::Site> sites;
            double cost{0};
        };
        std::optional<Option> onsite;
        for (std::size_t j = 0; j < instance_.network.cloudlet_count(); ++j) {
            const CloudletId c{static_cast<std::int64_t>(j)};
            if (!cloudlet_up(c, t)) continue;
            const double rel = instance_.network.cloudlet(c).reliability;
            const auto replicas = vnf::min_onsite_replicas(rel, vnf_rel, req.requirement);
            if (!replicas) continue;
            const double cost = *replicas * compute;
            if (!ledger_.fits(c, t, req.end(), cost)) continue;
            if (!onsite || cost < onsite->cost) {
                onsite = Option{{core::Site{c, *replicas}}, cost};
            }
        }
        std::optional<Option> offsite;
        {
            Option opt;
            double avail = 0.0;
            for (const CloudletId c : surviving_candidates(state, t)) {
                if (!ledger_.fits(c, t, req.end(), compute)) continue;
                opt.sites.push_back(core::Site{c, 1});
                opt.cost += compute;
                const double rel = instance_.network.cloudlet(c).reliability;
                avail = 1.0 - (1.0 - avail) * (1.0 - vnf_rel * rel);
                if (avail + kAvailSlack >= req.requirement) break;
            }
            if (avail + kAvailSlack >= req.requirement) offsite = std::move(opt);
        }

        std::optional<Option> chosen;
        if (onsite && (!offsite || onsite->cost <= offsite->cost)) {
            chosen = std::move(onsite);
        } else if (offsite) {
            chosen = std::move(offsite);
        }

        // Make-before-break: reserve the new placement first; the old one
        // is only released once the new one holds. A capacity-blocked
        // readmission may shed (single-cloudlet options only — multi-site
        // shedding cascades are more damage than degradation).
        std::vector<SiteState> fresh;
        bool reserved = false;
        if (chosen) {
            reserved = true;
            for (std::size_t s = 0; s < chosen->sites.size(); ++s) {
                const core::Site& site = chosen->sites[s];
                const double amount = site.replicas * compute;
                if (!ledger_.reserve(site.cloudlet, t, req.end(), amount)) {
                    for (std::size_t u = 0; u < s; ++u) {  // roll back
                        ledger_.release(chosen->sites[u].cloudlet, t, req.end(),
                                        chosen->sites[u].replicas * compute);
                    }
                    reserved = false;
                    break;
                }
            }
        }
        if (!reserved && config_.allow_shedding) {
            // Retry the cheapest single-cloudlet on-site option, letting
            // shedding free the space.
            std::optional<Option> forced;
            for (std::size_t j = 0; j < instance_.network.cloudlet_count(); ++j) {
                const CloudletId c{static_cast<std::int64_t>(j)};
                if (!cloudlet_up(c, t)) continue;
                const double rel = instance_.network.cloudlet(c).reliability;
                const auto replicas =
                    vnf::min_onsite_replicas(rel, vnf_rel, req.requirement);
                if (!replicas) continue;
                const double cost = *replicas * compute;
                if (!forced || cost < forced->cost) {
                    forced = Option{{core::Site{c, *replicas}}, cost};
                }
            }
            if (forced &&
                reserve_with_shedding(forced->sites[0].cloudlet, t, req.end(),
                                      forced->cost, req.payment, state.index, t,
                                      shed_gain_slots(state, t))) {
                chosen = std::move(forced);
                reserved = true;
            }
        }
        if (!reserved) {
            ++state.recover_retries;
            state.next_recover_attempt = backoff_until(t, state.recover_retries);
            ++report_.failed_recoveries;
            return;
        }

        // Break — as a handover, not a teardown: surviving old replicas
        // keep serving through the new placement's spin-up and expire the
        // slot it becomes ready, so a re-admission never loses a slot that
        // doing nothing would have served. Their reservations are trimmed
        // to the handover point right away.
        const TimeSlot ready = t + config_.respawn_delay_slots;
        for (SiteState& site : state.sites) {
            for (ReplicaState& replica : site.replicas) {
                if (!replica.alive) continue;
                const TimeSlot expiry =
                    std::min(std::max(t, ready), replica.reserved_until);
                if (std::max(t, replica.reserved_from) < replica.reserved_until &&
                    expiry < replica.reserved_until) {
                    ledger_.release(site.cloudlet, std::max(expiry, replica.reserved_from),
                                    replica.reserved_until, compute);
                }
                replica.reserved_until = expiry;
                replica.expires_at = expiry;
                if (t >= expiry) replica.alive = false;
            }
        }
        for (const core::Site& site : chosen->sites) {
            SiteState s;
            s.cloudlet = site.cloudlet;
            for (int k = 0; k < site.replicas; ++k) {
                ReplicaState replica;
                replica.alive = true;
                replica.reserved_from = t;
                replica.reserved_until = req.end();
                replica.expires_at = req.end();
                replica.ready_at = ready;
                s.replicas.push_back(replica);
            }
            fresh.push_back(std::move(s));
        }
        // Old (expiring) sites stay in place until they lapse; the new
        // sites are appended after them, and the serving scan prefers the
        // first ready site, so service hands over seamlessly.
        for (SiteState& s : fresh) state.sites.push_back(std::move(s));
        state.recover_retries = 0;
        ++report_.readmissions;
    }

    void account(RequestState& state, TimeSlot t) {
        ++report_.request_slots;
        ++state.window_slots;

        std::ptrdiff_t serving_site = -1;
        if (!state.shed) {
            for (std::size_t s = 0; s < state.sites.size() && serving_site < 0; ++s) {
                const SiteState& site = state.sites[s];
                if (!cloudlet_up(site.cloudlet, t)) continue;
                for (const ReplicaState& r : site.replicas) {
                    if (r.alive && r.ready_at <= t && t < r.expires_at) {
                        serving_site = static_cast<std::ptrdiff_t>(s);
                        break;
                    }
                }
            }
        }

        if (serving_site >= 0) {
            ++report_.served_slots;
            ++state.served;
            const CloudletId c =
                state.sites[static_cast<std::size_t>(serving_site)].cloudlet;
            if (state.was_serving) {
                if (c != state.last_cloudlet) {
                    ++report_.remote_failovers;
                } else if (serving_site != state.last_site) {
                    ++report_.local_failovers;
                }
            } else if (state.accounted) {
                ++report_.recovered_outages;
                if (state.disruption_start >= 0) {
                    report_.recovery_slots_total +=
                        static_cast<std::size_t>(t - state.disruption_start);
                }
            }
            state.was_serving = true;
            state.last_site = serving_site;
            state.last_cloudlet = c;
        } else {
            ++report_.disrupted_slots;
            if (state.was_serving) {
                ++report_.outages;
                state.disruption_start = t;
            }
            state.was_serving = false;
        }
        state.accounted = true;
    }

    void audit_capacity(TimeSlot t) {
        for (std::size_t j = 0; j < instance_.network.cloudlet_count(); ++j) {
            const CloudletId c{static_cast<std::int64_t>(j)};
            if (ledger_.usage(c, t) > ledger_.capacity(c) + 1e-6) {
                ++report_.capacity_violations;
            }
        }
    }

    void retire(TimeSlot t) {
        std::erase_if(active_, [&](std::size_t i) {
            const workload::Request& req = instance_.requests[i];
            if (req.end() != t + 1) return false;
            const RequestState& state = states_[i];
            ++report_.sla_requests;
            report_.promised_availability_sum += req.requirement;
            const double delivered =
                state.window_slots == 0
                    ? 0.0
                    : static_cast<double>(state.served) /
                          static_cast<double>(state.window_slots);
            report_.delivered_availability_sum += delivered;
            if (delivered + 1e-9 < req.requirement) ++report_.sla_violations;
            return true;
        });
    }

    const core::Instance& instance_;
    const std::vector<core::Decision>& decisions_;
    RecoveryConfig config_;
    edge::ResourceLedger ledger_;
    std::vector<TimeSlot> down_until_;  ///< per cloudlet; up iff t >= down_until
    std::vector<RequestState> states_;  ///< parallel to decisions
    std::vector<std::size_t> active_;   ///< admitted requests covering the slot
    RecoveryReport report_;
};

}  // namespace

RecoveryReport run_recovery_study(const core::Instance& instance,
                                  const std::vector<core::Decision>& decisions,
                                  const FaultSchedule& schedule,
                                  const RecoveryConfig& config) {
    instance.validate();
    if (decisions.size() != instance.requests.size())
        throw std::invalid_argument("run_recovery_study: decisions/requests size mismatch");
    RecoveryEngine engine(instance, decisions, config);
    return engine.run(schedule);
}

}  // namespace vnfr::sim
