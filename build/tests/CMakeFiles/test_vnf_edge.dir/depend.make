# Empty dependencies file for test_vnf_edge.
# This may be replaced when dependencies are built.
