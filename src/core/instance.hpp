// A complete problem instance of the VNF service reliability problem:
// the MEC infrastructure, the VNF catalog, the time horizon T, and the
// request sequence (in arrival order).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "edge/mec_network.hpp"
#include "vnf/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/request.hpp"

namespace vnfr::core {

struct Instance {
    edge::MecNetwork network;
    vnf::Catalog catalog;
    TimeSlot horizon{0};
    /// Requests sorted by (arrival, id); this is the online arrival order.
    std::vector<workload::Request> requests;

    /// Throws std::invalid_argument describing the first inconsistency
    /// (no cloudlets, empty catalog, request outside horizon, unknown VNF
    /// type, unsorted arrival order, ...).
    void validate() const;
};

/// Everything needed to synthesize an instance; defaults mirror the
/// paper's Section VI environment (real topology, 10 VNF types, uniform
/// cloudlet capacities/reliabilities, payment-rate workload).
struct InstanceConfig {
    std::string topology{"geant"};
    edge::CloudletAttachment cloudlets{};
    workload::GeneratorConfig workload{};
    /// Apply K = rc_max / rc_min by fixing rc_max and lowering rc_min
    /// (the paper's Fig. 2(b) sweep protocol).
    void set_reliability_ratio(double k);
};

/// Builds a validated instance deterministically from `rng`.
Instance make_instance(const InstanceConfig& config, common::Rng& rng);

}  // namespace vnfr::core
