// Ablation: failover dynamics under bursty (Markov) failures.
//
// The steady-state availability figures hide the *recovery* story the
// paper tells in Section I: on-site backups switch fast but die with their
// cloudlet; off-site backups survive cloudlet outages via remote failover.
// This bench replays the same schedules under Markov failure/repair
// processes with increasing cloudlet repair times and reports delivered
// availability, outages and local/remote failover counts per scheme.
#include <iostream>

#include "bench_common.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "report/table.hpp"
#include "sim/failover_study.hpp"

using namespace vnfr;

int main() {
    const std::size_t requests = bench::quick_mode() ? 200 : 500;
    const std::size_t seeds = bench::quick_mode() ? 2 : 5;
    const std::vector<double> mttrs =
        bench::quick_mode() ? std::vector<double>{2, 8} : std::vector<double>{1, 2, 4, 8, 16};

    std::cout << "== Ablation: failover dynamics vs cloudlet repair time ==\n\n";
    bench::print_thread_note();
    report::Table table({"cloudlet MTTR", "scheme", "availability", "outages/1k slots",
                         "local failovers/1k", "remote failovers/1k"});

    const std::uint64_t master = bench::scenario_seed("ablation-failover-dynamics", 0);
    for (const double mttr : mttrs) {
        struct Agg {
            common::RunningStats availability, outages, local, remote;
        };
        Agg onsite_agg;
        Agg offsite_agg;
        Agg hybrid_agg;

        for (std::size_t s = 0; s < seeds; ++s) {
            common::Rng rng = common::stream_rng(master, s);
            const core::Instance inst =
                core::make_instance(bench::paper_environment(requests), rng);

            const auto study = [&](core::OnlineScheduler& scheduler, Agg& agg) {
                const core::ScheduleResult result = core::run_online(inst, scheduler);
                // Several failure-process replications of the same schedule,
                // fanned out over the thread pool; deterministic for any
                // VNFR_THREADS by the counter-based stream seeding.
                sim::FailoverStudyConfig cfg;
                cfg.process.cloudlet_mttr_slots = mttr;
                cfg.replications = bench::quick_mode() ? 2 : 4;
                cfg.master_seed = common::stream_seed(master, 1000 + s);
                const sim::FailoverStudyOutcome out =
                    sim::run_failover_replications(inst, result.decisions, cfg);
                const double per_k =
                    1000.0 /
                    static_cast<double>(std::max<std::size_t>(1, out.total.request_slots));
                agg.availability.add(out.availability.mean());
                agg.outages.add(static_cast<double>(out.total.outages) * per_k);
                agg.local.add(static_cast<double>(out.total.local_failovers) * per_k);
                agg.remote.add(static_cast<double>(out.total.remote_failovers) * per_k);
            };
            core::OnsitePrimalDual onsite(inst);
            study(onsite, onsite_agg);
            core::OffsitePrimalDual offsite(inst);
            study(offsite, offsite_agg);
            core::HybridPrimalDual hybrid(inst);
            study(hybrid, hybrid_agg);
        }

        const auto emit = [&](const char* scheme, const Agg& agg) {
            table.add_row({report::format_double(mttr, 0), scheme,
                           report::format_double(agg.availability.mean(), 4),
                           report::format_double(agg.outages.mean(), 2),
                           report::format_double(agg.local.mean(), 2),
                           report::format_double(agg.remote.mean(), 2)});
        };
        emit("on-site (Alg 1)", onsite_agg);
        emit("off-site (Alg 2)", offsite_agg);
        emit("hybrid", hybrid_agg);
    }
    std::cout << table.to_text()
              << "\nas cloudlet outages lengthen, the on-site scheme's availability\n"
                 "degrades (no remote failover path) while off-site holds it by\n"
                 "switching cloudlets; the hybrid sits between the two.\n";
    return 0;
}
