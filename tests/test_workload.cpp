#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "vnf/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/request.hpp"
#include "workload/trace_io.hpp"

namespace vnfr::workload {
namespace {

vnf::Catalog test_catalog() {
    vnf::Catalog cat;
    cat.add("a", 1.0, 0.95);
    cat.add("b", 2.0, 0.9);
    cat.add("c", 3.0, 0.99);
    return cat;
}

TEST(Request, WindowSemantics) {
    Request r;
    r.arrival = 3;
    r.duration = 2;
    EXPECT_EQ(r.end(), 5);
    EXPECT_FALSE(r.covers(2));
    EXPECT_TRUE(r.covers(3));
    EXPECT_TRUE(r.covers(4));
    EXPECT_FALSE(r.covers(5));
}

TEST(Request, FitsHorizon) {
    Request r;
    r.arrival = 3;
    r.duration = 2;
    EXPECT_TRUE(r.fits_horizon(5));
    EXPECT_FALSE(r.fits_horizon(4));
    r.arrival = -1;
    EXPECT_FALSE(r.fits_horizon(10));
}

TEST(Generator, ProducesRequestedCount) {
    GeneratorConfig cfg;
    cfg.count = 137;
    common::Rng rng(1);
    const auto requests = generate(cfg, test_catalog(), rng);
    EXPECT_EQ(requests.size(), 137u);
}

TEST(Generator, AllRequestsFitHorizon) {
    GeneratorConfig cfg;
    cfg.horizon = 20;
    cfg.count = 500;
    cfg.duration_max = 10;
    common::Rng rng(2);
    for (const Request& r : generate(cfg, test_catalog(), rng)) {
        EXPECT_TRUE(r.fits_horizon(cfg.horizon));
    }
}

TEST(Generator, SortedByArrival) {
    GeneratorConfig cfg;
    cfg.count = 300;
    common::Rng rng(3);
    const auto requests = generate(cfg, test_catalog(), rng);
    for (std::size_t i = 1; i < requests.size(); ++i) {
        EXPECT_LE(requests[i - 1].arrival, requests[i].arrival);
    }
}

TEST(Generator, FieldsWithinConfiguredRanges) {
    GeneratorConfig cfg;
    cfg.count = 400;
    cfg.duration_min = 2;
    cfg.duration_max = 7;
    cfg.requirement_min = 0.92;
    cfg.requirement_max = 0.97;
    cfg.payment_rate_min = 2.0;
    cfg.payment_rate_max = 4.0;
    common::Rng rng(4);
    const auto cat = test_catalog();
    for (const Request& r : generate(cfg, cat, rng)) {
        EXPECT_GE(r.duration, 2);
        EXPECT_LE(r.duration, 7);
        EXPECT_GE(r.requirement, 0.92);
        EXPECT_LE(r.requirement, 0.97);
        const double pr = payment_rate(r, cat);
        EXPECT_GE(pr, 2.0 - 1e-9);
        EXPECT_LE(pr, 4.0 + 1e-9);
        EXPECT_LT(r.vnf.index(), cat.size());
    }
}

TEST(Generator, PaymentFollowsRateDefinition) {
    // pay_i = pr_i * d_i * c(f_i) * R_i (Section VI.A), so payment_rate
    // must invert exactly.
    GeneratorConfig cfg;
    cfg.count = 50;
    cfg.payment_rate_min = 3.0;
    cfg.payment_rate_max = 3.0;  // degenerate: every rate is exactly 3
    common::Rng rng(5);
    const auto cat = test_catalog();
    for (const Request& r : generate(cfg, cat, rng)) {
        EXPECT_NEAR(payment_rate(r, cat), 3.0, 1e-12);
    }
}

TEST(Generator, DeterministicBySeed) {
    GeneratorConfig cfg;
    cfg.count = 100;
    common::Rng a(77);
    common::Rng b(77);
    const auto cat = test_catalog();
    const auto r1 = generate(cfg, cat, a);
    const auto r2 = generate(cfg, cat, b);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].arrival, r2[i].arrival);
        EXPECT_EQ(r1[i].duration, r2[i].duration);
        EXPECT_DOUBLE_EQ(r1[i].payment, r2[i].payment);
    }
}

TEST(Generator, SetPaymentRatioImplementsH) {
    GeneratorConfig cfg;
    cfg.payment_rate_max = 10.0;
    cfg.set_payment_ratio(5.0);
    EXPECT_DOUBLE_EQ(cfg.payment_rate_min, 2.0);
    EXPECT_THROW(cfg.set_payment_ratio(0.5), std::invalid_argument);
}

TEST(Generator, PoissonArrivalsHitExactCount) {
    GeneratorConfig cfg = google_cluster_like(40, 250);
    common::Rng rng(6);
    const auto requests = generate(cfg, test_catalog(), rng);
    EXPECT_EQ(requests.size(), 250u);
}

TEST(Generator, GoogleClusterLikeIsHeavyTailed) {
    GeneratorConfig cfg = google_cluster_like(100, 2000);
    common::Rng rng(7);
    const auto requests = generate(cfg, test_catalog(), rng);
    std::size_t short_jobs = 0;
    for (const Request& r : requests) {
        if (r.duration <= 3) ++short_jobs;
    }
    // Bounded Pareto with alpha=1.2 puts most mass at small durations.
    EXPECT_GT(short_jobs, requests.size() / 2);
}

TEST(Generator, DiurnalArrivalsHitExactCount) {
    GeneratorConfig cfg;
    cfg.horizon = 48;
    cfg.count = 400;
    cfg.arrivals = ArrivalProcess::kDiurnal;
    common::Rng rng(21);
    EXPECT_EQ(generate(cfg, test_catalog(), rng).size(), 400u);
}

TEST(Generator, DiurnalArrivalsPeakMidHorizon) {
    GeneratorConfig cfg;
    cfg.horizon = 48;
    cfg.count = 6000;
    cfg.duration_min = 1;
    cfg.duration_max = 1;  // keep arrivals unclamped
    cfg.arrivals = ArrivalProcess::kDiurnal;
    cfg.diurnal_amplitude = 0.9;
    common::Rng rng(22);
    const auto requests = generate(cfg, test_catalog(), rng);
    std::size_t edges = 0;   // first and last quarter of the horizon
    std::size_t middle = 0;  // middle half
    for (const Request& r : requests) {
        if (r.arrival < 12 || r.arrival >= 36) ++edges;
        else ++middle;
    }
    EXPECT_GT(middle, 2 * edges) << "diurnal load must concentrate mid-horizon";
}

TEST(Generator, DiurnalAmplitudeValidated) {
    GeneratorConfig cfg;
    cfg.arrivals = ArrivalProcess::kDiurnal;
    cfg.diurnal_amplitude = 1.5;
    common::Rng rng(23);
    EXPECT_THROW(generate(cfg, test_catalog(), rng), std::invalid_argument);
}

TEST(Generator, ValidationErrors) {
    common::Rng rng(1);
    const auto cat = test_catalog();
    GeneratorConfig cfg;
    cfg.horizon = 0;
    EXPECT_THROW(generate(cfg, cat, rng), std::invalid_argument);
    cfg = {};
    cfg.duration_max = 0;
    EXPECT_THROW(generate(cfg, cat, rng), std::invalid_argument);
    cfg = {};
    cfg.duration_max = cfg.horizon + 1;
    EXPECT_THROW(generate(cfg, cat, rng), std::invalid_argument);
    cfg = {};
    cfg.requirement_max = 1.0;
    EXPECT_THROW(generate(cfg, cat, rng), std::invalid_argument);
    cfg = {};
    cfg.payment_rate_min = 0.0;
    EXPECT_THROW(generate(cfg, cat, rng), std::invalid_argument);
    EXPECT_THROW(generate(GeneratorConfig{}, vnf::Catalog{}, rng), std::invalid_argument);
}

TEST(TraceIo, RoundTripsExactly) {
    GeneratorConfig cfg;
    cfg.count = 60;
    common::Rng rng(8);
    const auto original = generate(cfg, test_catalog(), rng);

    std::stringstream buffer;
    write_trace(buffer, original);
    const auto loaded = read_trace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].id, original[i].id);
        EXPECT_EQ(loaded[i].vnf, original[i].vnf);
        EXPECT_DOUBLE_EQ(loaded[i].requirement, original[i].requirement);
        EXPECT_EQ(loaded[i].arrival, original[i].arrival);
        EXPECT_EQ(loaded[i].duration, original[i].duration);
        EXPECT_DOUBLE_EQ(loaded[i].payment, original[i].payment);
        EXPECT_EQ(loaded[i].source, original[i].source);
    }
}

TEST(TraceIo, RejectsMissingHeader) {
    std::stringstream buffer("not,a,header\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongColumnCount) {
    std::stringstream buffer(
        "id,vnf,requirement,arrival,duration,payment,source\n1,2,0.9\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsUnparsableNumbers) {
    std::stringstream buffer(
        "id,vnf,requirement,arrival,duration,payment,source\n1,0,zero.nine,0,1,5,-1\n");
    EXPECT_THROW(read_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsInvalidFieldValues) {
    std::stringstream bad_req(
        "id,vnf,requirement,arrival,duration,payment,source\n1,0,1.5,0,1,5,-1\n");
    EXPECT_THROW(read_trace(bad_req), std::runtime_error);
    std::stringstream bad_dur(
        "id,vnf,requirement,arrival,duration,payment,source\n1,0,0.9,0,0,5,-1\n");
    EXPECT_THROW(read_trace(bad_dur), std::runtime_error);
    std::stringstream bad_pay(
        "id,vnf,requirement,arrival,duration,payment,source\n1,0,0.9,0,1,-5,-1\n");
    EXPECT_THROW(read_trace(bad_pay), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
    std::stringstream buffer(
        "id,vnf,requirement,arrival,duration,payment,source\n1,0,0.9,0,1,5,-1\n\n"
        "2,1,0.95,1,2,7,3\n");
    const auto loaded = read_trace(buffer);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FALSE(loaded[0].source.valid());
    EXPECT_EQ(loaded[1].source, NodeId{3});
}

TEST(TraceIo, FileRoundTrip) {
    GeneratorConfig cfg;
    cfg.count = 10;
    common::Rng rng(9);
    const auto original = generate(cfg, test_catalog(), rng);
    const std::string path = ::testing::TempDir() + "/vnfr_trace_test.csv";
    write_trace_file(path, original);
    const auto loaded = read_trace_file(path);
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_THROW(read_trace_file("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace vnfr::workload
