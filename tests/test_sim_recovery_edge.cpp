// Edge cases of the recovery orchestrator: total outages, zero residual
// capacity, and faults landing on a request's final slot.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sim/recovery_engine.hpp"
#include "sim/recovery_faults.hpp"

namespace vnfr::sim {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::small_instance;

core::Decision admit(std::int64_t request, std::vector<core::Site> sites) {
    core::Decision d;
    d.admitted = true;
    d.placement = core::Placement{RequestId{request}, std::move(sites)};
    return d;
}

TEST(RecoveryEdge, AllCloudletsDownSimultaneously) {
    // A rack failure spanning the whole fleet: no policy has anywhere to
    // recover to — the engine must degrade cleanly, not crash or violate
    // capacity.
    const auto inst = small_instance({0.98, 0.97, 0.96}, 10.0, 8,
                                     {make_request(0, 0, 0.9, 0, 8, 5.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;
    FaultEvent rack;
    rack.slot = 2;
    rack.kind = FaultKind::kRackFailure;
    rack.cloudlet = CloudletId{0};
    rack.span = 3;
    rack.down_slots = 100;
    schedule.events = {rack};
    schedule.rack_failures = 1;

    for (const RecoveryPolicy policy :
         {RecoveryPolicy::kNone, RecoveryPolicy::kLocalRespawn,
          RecoveryPolicy::kRemoteMigrate, RecoveryPolicy::kReadmit}) {
        RecoveryConfig cfg;
        cfg.policy = policy;
        const RecoveryReport r = run_recovery_study(inst, decisions, schedule, cfg);
        EXPECT_EQ(r.rack_failures, 1u) << to_string(policy);
        EXPECT_EQ(r.instances_lost, 1u) << to_string(policy);
        EXPECT_EQ(r.served_slots, 2u) << to_string(policy);  // slots 0..1 only
        EXPECT_EQ(r.disrupted_slots, 6u) << to_string(policy);
        EXPECT_EQ(r.local_respawns + r.remote_migrations + r.readmissions, 0u)
            << to_string(policy);
        EXPECT_EQ(r.capacity_violations, 0u) << to_string(policy);
        EXPECT_EQ(r.sla_violations, 1u) << to_string(policy);
    }
    // The request-level policies burned bounded retries against the outage.
    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    const RecoveryReport r = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_GT(r.failed_recoveries, 0u);
    EXPECT_LE(r.failed_recoveries, static_cast<std::size_t>(cfg.max_retries));
}

TEST(RecoveryEdge, ZeroResidualCapacityBlocksRemoteMigrate) {
    // The only surviving cloudlet is completely full and shedding is off:
    // kRemoteMigrate must fail gracefully without touching the occupant.
    const auto inst = small_instance({0.98, 0.97}, 2.0, 8,
                                     {make_request(0, 1, 0.8, 0, 8, 1.0),
                                      make_request(1, 0, 0.9, 0, 8, 10.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{1}, 1}}),   // compute 2: c1 is full
        admit(1, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;
    FaultEvent crash;
    crash.slot = 2;
    crash.kind = FaultKind::kCloudletCrash;
    crash.cloudlet = CloudletId{0};
    crash.down_slots = 100;
    schedule.events = {crash};
    schedule.cloudlet_crashes = 1;

    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    cfg.allow_shedding = false;
    const RecoveryReport r = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(r.remote_migrations, 0u);
    EXPECT_EQ(r.shed_requests, 0u);
    EXPECT_GT(r.failed_recoveries, 0u);
    EXPECT_LE(r.failed_recoveries, static_cast<std::size_t>(cfg.max_retries));
    EXPECT_EQ(r.capacity_violations, 0u);
    // The occupant kept its full window; the victim of the crash lost the
    // remainder of its own.
    EXPECT_EQ(r.served_slots, 8u + 2u);
}

TEST(RecoveryEdge, FailureOnFinalSlotRecoversOnlyWithInstantRespawn) {
    // The crash lands on the request's last slot. With one slot of spin-up
    // there is nothing left to win (the respawn is booked but never
    // serves); with instant respawn the final slot itself is saved.
    const auto inst =
        small_instance({0.98, 0.97}, 10.0, 6, {make_request(0, 0, 0.9, 0, 5, 5.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;
    FaultEvent crash;
    crash.slot = 4;  // request window is [0, 5): slot 4 is the last one
    crash.kind = FaultKind::kInstanceCrash;
    crash.request_index = 0;
    crash.site = 0;
    crash.replica = 0;
    schedule.events = {crash};
    schedule.instance_crashes = 1;

    RecoveryConfig cfg;
    cfg.policy = RecoveryPolicy::kLocalRespawn;
    const RecoveryReport delayed = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(delayed.served_slots, 4u);
    EXPECT_EQ(delayed.disrupted_slots, 1u);
    EXPECT_EQ(delayed.local_respawns, 1u);  // booked, but spins up past the end
    EXPECT_EQ(delayed.recovered_outages, 0u);
    EXPECT_EQ(delayed.capacity_violations, 0u);

    cfg.respawn_delay_slots = 0;
    const RecoveryReport instant = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(instant.served_slots, 5u);
    EXPECT_EQ(instant.disrupted_slots, 0u);
    EXPECT_EQ(instant.sla_violations, 0u);

    cfg = RecoveryConfig{};
    cfg.policy = RecoveryPolicy::kRemoteMigrate;
    cfg.respawn_delay_slots = 0;
    const RecoveryReport migrated = run_recovery_study(inst, decisions, schedule, cfg);
    EXPECT_EQ(migrated.served_slots, 5u);
    EXPECT_EQ(migrated.capacity_violations, 0u);
}

TEST(RecoveryEdge, FaultsAfterTheWindowAreNoOps) {
    const auto inst =
        small_instance({0.98}, 10.0, 8, {make_request(0, 0, 0.9, 0, 4, 5.0)});
    const std::vector<core::Decision> decisions = {
        admit(0, {core::Site{CloudletId{0}, 1}})};
    FaultSchedule schedule;
    FaultEvent crash;
    crash.slot = 6;  // request ended at slot 4
    crash.kind = FaultKind::kCloudletCrash;
    crash.cloudlet = CloudletId{0};
    crash.down_slots = 2;
    schedule.events = {crash};
    schedule.cloudlet_crashes = 1;
    FaultEvent dangling;
    dangling.slot = 6;
    dangling.kind = FaultKind::kInstanceCrash;
    dangling.request_index = 0;
    schedule.events.push_back(dangling);
    schedule.instance_crashes = 1;

    const RecoveryReport r =
        run_recovery_study(inst, decisions, schedule, RecoveryConfig{});
    EXPECT_EQ(r.served_slots, 4u);
    EXPECT_EQ(r.disrupted_slots, 0u);
    EXPECT_EQ(r.instances_lost, 0u);
    EXPECT_EQ(r.instance_crashes, 0u);  // landed outside the window: not applied
    EXPECT_EQ(r.sla_violations, 0u);
}

}  // namespace
}  // namespace vnfr::sim
