#include "core/onsite_primal_dual.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "helpers.hpp"
#include "sim/failure_model.hpp"
#include "vnf/reliability.hpp"

namespace vnfr::core {
namespace {

using vnfr::testing::make_request;
using vnfr::testing::random_instance;
using vnfr::testing::small_instance;

TEST(OnsitePrimalDual, FirstRequestAdmittedAtZeroDuals) {
    // All lambda start at 0, so the first request's dual price is 0 < pay.
    const Instance inst = small_instance({0.99, 0.98}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    OnsitePrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    ASSERT_EQ(d.placement.sites.size(), 1u);
}

TEST(OnsitePrimalDual, PlacementUsesExactReplicaCount) {
    const Instance inst = small_instance({0.99}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0)});
    OnsitePrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    const auto expected =
        vnf::min_onsite_replicas(0.99, inst.catalog.reliability(VnfTypeId{0}), 0.95);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(d.placement.sites[0].replicas, *expected);
}

TEST(OnsitePrimalDual, AdmittedPlacementMeetsRequirement) {
    const Instance inst = small_instance({0.99, 0.97}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 5.0),
                                          make_request(1, 1, 0.9, 1, 3, 7.0)});
    OnsitePrimalDual scheduler(inst);
    for (const auto& r : inst.requests) {
        const Decision d = scheduler.decide(r);
        if (d.admitted) {
            EXPECT_GE(sim::analytic_availability(inst, r, d.placement),
                      r.requirement - 1e-12);
        }
    }
}

TEST(OnsitePrimalDual, RejectsWhenNoCloudletReliableEnough) {
    // Requirement 0.97 above every cloudlet reliability: infeasible anywhere.
    const Instance inst = small_instance({0.95, 0.96}, 100.0, 10,
                                         {make_request(0, 0, 0.97, 0, 2, 5.0)});
    OnsitePrimalDual scheduler(inst);
    EXPECT_FALSE(scheduler.decide(inst.requests[0]).admitted);
}

TEST(OnsitePrimalDual, DualPricesStartAtZero) {
    const Instance inst = small_instance({0.99}, 100.0, 5, {});
    OnsitePrimalDual scheduler(inst);
    for (TimeSlot t = 0; t < 5; ++t) {
        EXPECT_DOUBLE_EQ(scheduler.lambda(CloudletId{0}, t), 0.0);
    }
}

TEST(OnsitePrimalDual, DualUpdateOnlyTouchesWindowOfChosenCloudlet) {
    const Instance inst = small_instance({0.99, 0.99}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 2, 3, 5.0)});
    OnsitePrimalDual scheduler(inst);
    const Decision d = scheduler.decide(inst.requests[0]);
    ASSERT_TRUE(d.admitted);
    const CloudletId chosen = d.placement.sites[0].cloudlet;
    const CloudletId other{chosen == CloudletId{0} ? 1 : 0};
    for (TimeSlot t = 0; t < 10; ++t) {
        EXPECT_DOUBLE_EQ(scheduler.lambda(other, t), 0.0);
        if (t >= 2 && t < 5) {
            EXPECT_GT(scheduler.lambda(chosen, t), 0.0);
        } else {
            EXPECT_DOUBLE_EQ(scheduler.lambda(chosen, t), 0.0);
        }
    }
}

TEST(OnsitePrimalDual, DualUpdateMatchesEquation34) {
    const Instance inst = small_instance({0.99}, 100.0, 10,
                                         {make_request(0, 0, 0.95, 0, 2, 6.0)});
    // Pin the capacity scale at 1 to check the literal Eq. 34 arithmetic.
    OnsitePrimalDual scheduler(inst, OnsitePrimalDualConfig{.dual_capacity_scale = 1.0});
    const auto n = *vnf::min_onsite_replicas(0.99, inst.catalog.reliability(VnfTypeId{0}),
                                             0.95);
    const double demand = n * inst.catalog.compute_units(VnfTypeId{0});
    ASSERT_TRUE(scheduler.decide(inst.requests[0]).admitted);
    // lambda was 0: new = 0 * (1 + a/cap) + a * pay / (d * cap).
    const double expected = demand * 6.0 / (2.0 * 100.0);
    EXPECT_NEAR(scheduler.lambda(CloudletId{0}, 0), expected, 1e-12);
    EXPECT_NEAR(scheduler.lambda(CloudletId{0}, 1), expected, 1e-12);
}

TEST(OnsitePrimalDual, RejectsOncePriceExceedsPayment) {
    // Tiny capacity drives lambda up fast; a later identical request whose
    // dual price exceeds its payment must be rejected even with space left
    // under the pure (non-enforcing) variant.
    std::vector<workload::Request> requests;
    for (int i = 0; i < 40; ++i) {
        requests.push_back(make_request(i, 0, 0.9, 0, 1, 1.0));
    }
    const Instance inst = small_instance({0.99}, 4.0, 1, std::move(requests));
    OnsitePrimalDual scheduler(inst, OnsitePrimalDualConfig{.enforce_capacity = false});
    const ScheduleResult result = run_online(inst, scheduler);
    EXPECT_LT(result.admitted, inst.requests.size());
    EXPECT_GT(result.admitted, 0u);
}

TEST(OnsitePrimalDual, EnforcedVariantNeverOvershoots) {
    common::Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        const Instance inst = random_instance(rng, 60, 3, 12, 10, 20);
        OnsitePrimalDual scheduler(inst);
        const ScheduleResult result = run_online(inst, scheduler);
        EXPECT_DOUBLE_EQ(result.max_overshoot, 0.0);
        EXPECT_LE(result.max_load_factor, 1.0 + 1e-9);
    }
}

TEST(OnsitePrimalDual, DualFeasibilityInvariantHolds) {
    // Constraint (32): delta_i >= pay_i - min_j price_j(i). deltas are set
    // at arrival with equality and prices only grow, so at the end of the
    // run the inequality must hold for every request.
    common::Rng rng(13);
    const Instance inst = random_instance(rng, 50, 3, 12);
    OnsitePrimalDual scheduler(inst);
    run_online(inst, scheduler);
    ASSERT_EQ(scheduler.deltas().size(), inst.requests.size());
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        const workload::Request& r = inst.requests[i];
        double min_price = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < inst.network.cloudlet_count(); ++j) {
            const auto price =
                scheduler.dual_price(r, CloudletId{static_cast<std::int64_t>(j)});
            if (price) min_price = std::min(min_price, *price);
        }
        if (min_price == std::numeric_limits<double>::infinity()) continue;
        EXPECT_GE(scheduler.deltas()[i], r.payment - min_price - 1e-9)
            << "request " << i;
    }
}

TEST(OnsitePrimalDual, LambdaIsNonDecreasingOverArrivals) {
    common::Rng rng(17);
    const Instance inst = random_instance(rng, 40, 2, 10);
    OnsitePrimalDual scheduler(inst);
    std::vector<double> last(inst.network.cloudlet_count() *
                                 static_cast<std::size_t>(inst.horizon),
                             0.0);
    for (const auto& r : inst.requests) {
        scheduler.decide(r);
        std::size_t k = 0;
        for (std::size_t j = 0; j < inst.network.cloudlet_count(); ++j) {
            for (TimeSlot t = 0; t < inst.horizon; ++t, ++k) {
                const double v =
                    scheduler.lambda(CloudletId{static_cast<std::int64_t>(j)}, t);
                EXPECT_GE(v, last[k] - 1e-12);
                last[k] = v;
            }
        }
    }
}

TEST(OnsitePrimalDual, RevenueEqualsSumOfAdmittedPayments) {
    common::Rng rng(19);
    const Instance inst = random_instance(rng, 80, 3, 15);
    OnsitePrimalDual scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    double expected = 0.0;
    for (std::size_t i = 0; i < inst.requests.size(); ++i) {
        if (result.decisions[i].admitted) expected += inst.requests[i].payment;
    }
    EXPECT_NEAR(result.revenue, expected, 1e-9);
}

TEST(OnsitePrimalDual, DeterministicAcrossRuns) {
    common::Rng rng(23);
    const Instance inst = random_instance(rng, 60, 3, 12);
    OnsitePrimalDual s1(inst);
    OnsitePrimalDual s2(inst);
    const ScheduleResult r1 = run_online(inst, s1);
    const ScheduleResult r2 = run_online(inst, s2);
    EXPECT_DOUBLE_EQ(r1.revenue, r2.revenue);
    EXPECT_EQ(r1.admitted, r2.admitted);
    for (std::size_t i = 0; i < r1.decisions.size(); ++i) {
        EXPECT_EQ(r1.decisions[i].admitted, r2.decisions[i].admitted);
    }
}

TEST(OnsitePrimalDual, SingleSitePlacementsOnly) {
    // On-site scheme: every admitted request occupies exactly one cloudlet.
    common::Rng rng(29);
    const Instance inst = random_instance(rng, 60, 4, 12);
    OnsitePrimalDual scheduler(inst);
    const ScheduleResult result = run_online(inst, scheduler);
    for (const Decision& d : result.decisions) {
        if (d.admitted) {
            EXPECT_EQ(d.placement.sites.size(), 1u);
            EXPECT_GE(d.placement.sites[0].replicas, 1);
        }
    }
}

TEST(OnsitePrimalDual, NameReflectsVariant) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {});
    EXPECT_EQ(OnsitePrimalDual(inst).name(), "onsite-primal-dual");
    EXPECT_EQ(OnsitePrimalDual(inst, {.enforce_capacity = false}).name(),
              "onsite-primal-dual-pure");
}

TEST(OnsitePrimalDual, DualScaleConfiguration) {
    const Instance inst = small_instance({0.99}, 10.0, 5, {});
    // Explicit scale is honoured by the capacity-checked variant.
    OnsitePrimalDual explicit_scale(inst, OnsitePrimalDualConfig{.dual_capacity_scale = 3.5});
    EXPECT_DOUBLE_EQ(explicit_scale.dual_capacity_scale(), 3.5);
    // Auto scale derives >= 1 from the catalog.
    OnsitePrimalDual auto_scale(inst);
    EXPECT_GE(auto_scale.dual_capacity_scale(), 1.0);
    // The pure variant must follow Eq. 34 literally (scale forced to 1).
    OnsitePrimalDual pure(inst, OnsitePrimalDualConfig{.enforce_capacity = false,
                                                       .dual_capacity_scale = 5.0});
    EXPECT_DOUBLE_EQ(pure.dual_capacity_scale(), 1.0);
    EXPECT_THROW(OnsitePrimalDual(inst, OnsitePrimalDualConfig{.dual_capacity_scale = -1.0}),
                 std::invalid_argument);
}

TEST(OnsitePrimalDual, ScaledVariantFillsCapacityUnderSaturation) {
    // Heavy homogeneous load: the scaled prices must not strand capacity --
    // the scaled variant's revenue should beat the literal Eq. 34 pricing.
    std::vector<workload::Request> requests;
    for (int i = 0; i < 120; ++i) requests.push_back(make_request(i, 0, 0.9, 0, 2, 4.0));
    const Instance inst = small_instance({0.99, 0.98}, 40.0, 2, std::move(requests));
    OnsitePrimalDual literal(inst, OnsitePrimalDualConfig{.dual_capacity_scale = 1.0});
    OnsitePrimalDual scaled(inst);
    const double literal_revenue = run_online(inst, literal).revenue;
    const double scaled_revenue = run_online(inst, scaled).revenue;
    EXPECT_GE(scaled_revenue, literal_revenue);
}

}  // namespace
}  // namespace vnfr::core
