#!/usr/bin/env python3
"""vnfr-asa: AST-driven static analysis for concurrency, determinism, and
durability invariants of the vnfr tree.

The generic toolchain (clang-tidy, -Wthread-safety) checks language-level
properties; this analyzer checks *repo-specific* contracts that the
paper's determinism and failure-model guarantees rely on:

determinism rules (scope: ``src/sim``, ``src/core`` — the checksummed
replication paths whose results must be bit-identical at any thread
count and across restarts):

  nondet-rand            ``std::rand`` / ``srand`` / ``std::random_device``
                         are banned; all randomness flows through
                         ``common::Rng`` counter-based streams.
  nondet-clock           ``steady_clock/system_clock/high_resolution_clock
                         ::now()`` is banned; wall-clock reads make
                         replications irreproducible. (Time limits belong
                         in src/opt, outside the checksummed scope.)
  nondet-addr-hash       ``std::hash`` over pointer types and
                         ``reinterpret_cast<uintptr_t>`` are banned;
                         address-dependent values change run to run (ASLR)
                         and poison digests.
  nondet-unordered-iter  range-for over a ``std::unordered_map/set`` in a
                         file that feeds a digest/checksum; iteration
                         order is hash-seed and rehash dependent — sort
                         or re-key before reducing.

durability rules (scope: ``src/serve`` — the crash-recovery proofs
assume a strict write -> fsync -> rename -> dirsync order):

  durability-rename-fsync    a ``rename()`` with no fsync/fdatasync
                             earlier in the same function: the renamed
                             file's contents may not be durable.
  durability-rename-dirsync  a ``rename()`` with no following
                             ``fsync_parent_dir()`` in the same function:
                             the new directory entry may not survive a
                             crash.
  durability-wal-sync        a ``write_all()`` append with no following
                             fsync/fdatasync in the same function: the
                             outcome could be externalized before the
                             bytes are durable.
  durability-vfs-routing     a raw POSIX file syscall (``::open``,
                             ``::write``, ``::fsync``, ``::rename``, ...)
                             anywhere in src/serve outside
                             ``src/serve/vfs.cpp``: all storage I/O must
                             route through the ``serve::Vfs`` layer, or
                             fault injection and power-cut simulation
                             silently stop covering it.

lock-order rule (scope: all of ``src/``):

  lock-order             every ``MutexLock`` / ``lock_guard`` /
                         ``unique_lock`` acquisition must name a lock
                         declared in ``tools/lock_hierarchy.txt``, and a
                         nested acquisition must never take a lock that
                         ranks *before* one already held (rank order =
                         file order, outermost first).

plus ``suppression-format`` (see tools/vnfr_findings.py): suppressions
must name a registered rule and justify themselves.

Front ends. With the libclang Python bindings installed (``pip install
libclang``) and a ``compile_commands.json`` in the build dir, functions,
calls, and range-for statements come from the real AST (``--mode ast``).
Without them the analyzer falls back to a documented token-level mode
(``--mode token``): single-line statements, brace-counted function
regions, and regex call detection. Both modes implement every rule and
agree on the fixtures under tests/analysis/; token mode is the floor CI
relies on, AST mode removes the single-line/boilerplate approximations.

Suppression: ``// vnfr-asa: allow(<rule>) <justification>`` on the
finding's line or the line above. Justification required.

Exit status: 0 clean, 1 findings, 2 usage/config error.
Run directly, via the ``vnfr_asa`` ctest, or with ``--json`` for CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import vnfr_findings as vf  # noqa: E402
from vnfr_findings import Finding  # noqa: E402

TOOL = "vnfr-asa"

RULES: dict[str, str] = {
    "nondet-rand": "std::rand/srand/std::random_device in a checksummed path; "
                   "use common::Rng counter-based streams",
    "nondet-clock": "steady/system/high_resolution_clock::now() in a "
                    "checksummed path; wall-clock reads break replayability",
    "nondet-addr-hash": "std::hash over a pointer type or "
                        "reinterpret_cast<uintptr_t>; address-dependent "
                        "values differ across runs (ASLR) and poison digests",
    "nondet-unordered-iter": "iteration over an unordered container in a "
                             "digest/checksum-feeding file; order is "
                             "hash-seed dependent — sort or re-key first",
    "durability-rename-fsync": "rename() without a preceding fsync/fdatasync "
                               "in the same function; renamed contents may "
                               "not be durable",
    "durability-rename-dirsync": "rename() without a following "
                                 "fsync_parent_dir() in the same function; "
                                 "the directory entry may not survive a crash",
    "durability-wal-sync": "write_all() without a following fsync/fdatasync "
                           "in the same function; bytes may be externalized "
                           "before they are durable",
    "durability-vfs-routing": "raw POSIX file syscall in src/serve outside "
                              "vfs.cpp; route all storage I/O through "
                              "serve::Vfs so fault injection covers it",
    "lock-order": "lock acquisition that is undeclared in "
                  "tools/lock_hierarchy.txt or inverts the declared order",
    "replication-ack-apply": "send_ack() without a preceding "
                             "apply_replicated() in the same function; the "
                             "standby would acknowledge records it has not "
                             "durably applied (ship-before-ack inversion)",
    "replication-release-ack": "release_wals_below() without a preceding "
                               "latest_ack() in the same function; the "
                               "primary would retire WAL generations the "
                               "standby never confirmed receiving",
    "replication-promote-checkpoint": "mark_promoted() without a preceding "
                                      "checkpoint() in the same function; "
                                      "promotion must persist the caught-up "
                                      "state before accepting admissions "
                                      "(fsync-before-promote)",
    vf.SUPPRESSION_RULE: vf.SUPPRESSION_RULE_DOC,
}

DETERMINISM_PREFIXES = ("src/sim", "src/core")
DURABILITY_PREFIXES = ("src/serve",)
REPLICATION_PREFIXES = ("src/serve/replication",)

# Tokens marking a file as feeding an ordered digest/checksum reduction.
CHECKSUM_TOKENS = re.compile(r"\b(?:digest|Fnv1a|metrics_checksum|checksum)\b")

RE_RAND = re.compile(
    r"\bstd::rand\b|\bstd::srand\b|\bstd::random_device\b"
    r"|(?<![:\w])(?:rand|srand)\s*\(|(?<![:\w])random_device\b"
)
RE_CLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
RE_ADDR_HASH = re.compile(
    r"std::hash\s*<[^>]*\*[^>]*>"
    r"|reinterpret_cast\s*<\s*(?:std::)?uintptr_t\s*>"
)
RE_UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
# Raw POSIX file syscalls (globally qualified) that bypass the Vfs layer.
# The file-mutating and file-reading set only: directory iteration
# (opendir/readdir) and mkdir stay raw in harness code by design.
RE_RAW_SYSCALL = re.compile(
    r"(?<![\w>)])::\s*(open|openat|creat|read|pread|write|pwrite|fsync"
    r"|fdatasync|rename|renameat|ftruncate|unlink|close|lseek)\s*\("
)
# The single file allowed to touch raw syscalls: the PosixVfs backend.
VFS_BACKEND = "src/serve/vfs.cpp"
RE_DECL_NAME = re.compile(r">\s+([A-Za-z_]\w*)\s*(?:[;={(]|$)")
RE_RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*([^);]+)\)")
RE_CALLS = {
    "rename": re.compile(r"(?<![\w])rename\s*\("),
    "fsync": re.compile(r"(?<![\w])fsync\s*\("),
    "fdatasync": re.compile(r"(?<![\w])fdatasync\s*\("),
    "fsync_parent_dir": re.compile(r"(?<![\w])fsync_parent_dir\s*\("),
    "write_all": re.compile(r"(?<![\w])write_all\s*\("),
    "send_ack": re.compile(r"(?<![\w])send_ack\s*\("),
    "apply_replicated": re.compile(r"(?<![\w])apply_replicated\s*\("),
    "release_wals_below": re.compile(r"(?<![\w])release_wals_below\s*\("),
    "latest_ack": re.compile(r"(?<![\w])latest_ack\s*\("),
    "mark_promoted": re.compile(r"(?<![\w])mark_promoted\s*\("),
    "checkpoint": re.compile(r"(?<![\w])checkpoint\s*\("),
}
RE_ACQUIRE = [
    # common::MutexLock lock(&mu_);  /  MutexLock l(&job->error_mutex);
    re.compile(r"\bMutexLock\s+\w+\s*\(\s*&?\s*([\w.>\-\[\]]+?)\s*\)"),
    # std::lock_guard<std::mutex> lock(mutex_); / std::unique_lock<...> l(m);
    re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+\w+\s*"
               r"\(\s*([\w.>\-\[\]]+?)\s*[),]"),
]
RE_FUNC_OPEN = re.compile(
    r"\)\s*(?:const\b|noexcept\b|override\b|final\b|mutable\b"
    r"|->\s*[\w:<>,&*\s]+|\s)*\{"
)
RE_NAME_BEFORE_PAREN = re.compile(r"([A-Za-z_~]\w*(?:::[A-Za-z_~]\w*)*)\s*\(")
KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "sizeof",
            "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
            "decltype", "alignof", "noexcept", "defined"}


@dataclass
class Event:
    line: int      # 1-based
    kind: str      # "call" | "acquire" | "range_for" | "depthmark"
    name: str      # callee base name / lock base name / range base name
    depth: int = 0  # brace depth relative to the function body
    #: For AST-mode acquisitions: last line of the enclosing scope (the
    #: scoped lock is released there). Token mode leaves this None and
    #: relies on per-line "depthmark" events instead.
    until: int | None = None


@dataclass
class FunctionRegion:
    name: str
    start: int
    end: int
    events: list[Event] = field(default_factory=list)


@dataclass
class FileModel:
    rel: str
    raw_lines: list[str]
    code_lines: list[str]
    functions: list[FunctionRegion]
    unordered_names: set[str]
    feeds_checksum: bool
    mode: str  # which front end produced the structure


def base_name(expr: str) -> str:
    """Last identifier of a member path: 'job->error_mutex' -> 'error_mutex'."""
    parts = re.split(r"->|\.|::", expr)
    tail = parts[-1].strip().strip("&*() \t")
    return tail


# --------------------------------------------------------------------------
# Token front end
# --------------------------------------------------------------------------

def guess_function_name(code_lines: list[str], open_idx: int) -> str:
    for idx in range(open_idx, max(-1, open_idx - 6), -1):
        line = code_lines[idx]
        if "(" not in line:
            continue
        for m in RE_NAME_BEFORE_PAREN.finditer(line):
            name = m.group(1).split("::")[-1]
            if name not in KEYWORDS:
                return name
        break
    return "?"


def scan_line_events(code: str, line_no: int, depth_before: int) -> list[Event]:
    events: list[Event] = []

    def depth_at(pos: int) -> int:
        prefix = code[:pos]
        return depth_before + prefix.count("{") - prefix.count("}")

    for name, pattern in RE_CALLS.items():
        for m in pattern.finditer(code):
            events.append(Event(line_no, "call", name, depth_at(m.start())))
    # adopt_lock/defer_lock constructions wrap an already-held (or not yet
    # held) mutex — they are not acquisitions and carry no ordering.
    if "adopt_lock" not in code and "defer_lock" not in code:
        for pattern in RE_ACQUIRE:
            for m in pattern.finditer(code):
                events.append(
                    Event(line_no, "acquire", base_name(m.group(1)),
                          depth_at(m.start())))
    for m in RE_RANGE_FOR.finditer(code):
        events.append(
            Event(line_no, "range_for", base_name(m.group(1)),
                  depth_at(m.start())))
    events.sort(key=lambda e: e.line)
    return events


def build_model_token(path: Path, rel: str) -> FileModel:
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    code_lines = [vf.strip_comments_and_strings(l) for l in raw_lines]

    unordered_names: set[str] = set()
    for code in code_lines:
        if RE_UNORDERED_DECL.search(code):
            m = RE_DECL_NAME.search(code)
            if m:
                unordered_names.add(m.group(1))

    functions: list[FunctionRegion] = []
    depth = 0
    current: FunctionRegion | None = None
    current_start_depth = 0
    for idx, code in enumerate(code_lines):
        line_no = idx + 1
        if current is None and RE_FUNC_OPEN.search(code):
            current = FunctionRegion(
                guess_function_name(code_lines, idx), line_no, line_no)
            current_start_depth = depth
        if current is not None:
            current.events.extend(
                scan_line_events(code, line_no, depth - current_start_depth))
        depth += code.count("{") - code.count("}")
        if current is not None:
            # End-of-line depth marker: scoped locks acquired deeper than
            # this are released here (their block closed on this line).
            current.events.append(
                Event(line_no, "depthmark", "", depth - current_start_depth))
        if current is not None and depth <= current_start_depth:
            current.end = line_no
            functions.append(current)
            current = None
    if current is not None:  # unbalanced braces: close at EOF
        current.end = len(code_lines)
        functions.append(current)

    return FileModel(
        rel=rel,
        raw_lines=raw_lines,
        code_lines=code_lines,
        functions=functions,
        unordered_names=unordered_names,
        feeds_checksum=any(CHECKSUM_TOKENS.search(c) for c in code_lines),
        mode="token",
    )


# --------------------------------------------------------------------------
# AST front end (libclang; optional)
# --------------------------------------------------------------------------

def load_libclang():
    """Returns the clang.cindex module or None if unavailable."""
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def compile_args_for(cindex, build_dir: Path | None, path: Path) -> list[str]:
    if build_dir is not None:
        try:
            db = cindex.CompilationDatabase.fromDirectory(str(build_dir))
            cmds = db.getCompileCommands(str(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]  # drop the compiler
                # Drop the output/input file arguments libclang chokes on.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == str(path) or a.endswith(path.name):
                        continue
                    cleaned.append(a)
                return cleaned
        except Exception:
            pass
    return ["-std=c++20"]


def build_model_ast(cindex, path: Path, rel: str,
                    build_dir: Path | None) -> FileModel:
    """AST front end: real function extents, call sites, and range-fors.

    Shares the token scanner's per-line pattern rules (those are exact on
    stripped tokens already); the AST replaces the *structural*
    approximations — function regions, call/acquire events with scope
    depth, and unordered-container range detection via actual types.
    """
    model = build_model_token(path, rel)  # baseline incl. pattern artifacts

    index = cindex.Index.create()
    tu = index.parse(str(path), args=compile_args_for(cindex, build_dir, path),
                     options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)

    fn_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }

    functions: list[FunctionRegion] = []

    def in_this_file(cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and Path(loc.file.name) == path

    def collect_events(cursor, region: FunctionRegion, depth: int,
                       scope_end: int) -> None:
        for child in cursor.get_children():
            d = depth
            end = scope_end
            if child.kind == cindex.CursorKind.COMPOUND_STMT:
                d += 1
                end = child.extent.end.line
            if child.kind == cindex.CursorKind.CALL_EXPR:
                callee = child.spelling or ""
                if callee in RE_CALLS:
                    region.events.append(
                        Event(child.location.line, "call", callee, depth))
            if child.kind in (cindex.CursorKind.VAR_DECL,):
                type_spelling = child.type.spelling or ""
                if "MutexLock" in type_spelling or "lock_guard" in type_spelling \
                        or "unique_lock" in type_spelling \
                        or "scoped_lock" in type_spelling:
                    tokens = [t.spelling for t in child.get_tokens()]
                    joined = " ".join(tokens)
                    m = re.search(r"\(\s*&?\s*([\w.>\-:\[\]\s]+?)\s*[),]", joined)
                    if m and "adopt_lock" not in joined \
                            and "defer_lock" not in joined:
                        region.events.append(
                            Event(child.location.line, "acquire",
                                  base_name(m.group(1).replace(" ", "")),
                                  depth, until=scope_end))
            if child.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                range_child = None
                for sub in child.get_children():
                    range_child = sub  # last decl before body holds the range
                    break
                # Inspect every child expression type for unordered containers.
                unordered = any(
                    "unordered_" in (sub.type.spelling or "")
                    for sub in child.walk_preorder() if in_this_file(sub)
                )
                name = "?"
                if range_child is not None:
                    name = base_name(range_child.spelling or "?")
                region.events.append(Event(
                    child.location.line, "range_for",
                    name if not unordered else "<unordered>", depth))
            collect_events(child, region, d, end)

    for cursor in tu.cursor.walk_preorder():
        if cursor.kind in fn_kinds and cursor.is_definition() and in_this_file(cursor):
            extent = cursor.extent
            region = FunctionRegion(cursor.spelling, extent.start.line,
                                    extent.end.line)
            collect_events(cursor, region, 0, extent.end.line)
            region.events.sort(key=lambda e: e.line)
            functions.append(region)

    if functions:
        model.functions = functions
        # AST marks unordered ranges directly with the '<unordered>' token.
        model.unordered_names.add("<unordered>")
        model.mode = "ast"
    return model


# --------------------------------------------------------------------------
# Rule engine (front-end independent)
# --------------------------------------------------------------------------

def load_hierarchy(hierarchy_path: Path) -> dict[str, int]:
    if not hierarchy_path.is_file():
        raise FileNotFoundError(f"lock hierarchy file missing: {hierarchy_path}")
    ranks: dict[str, int] = {}
    for raw in hierarchy_path.read_text(encoding="utf-8").splitlines():
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        if entry in ranks:
            raise ValueError(f"duplicate lock '{entry}' in {hierarchy_path}")
        ranks[entry] = len(ranks)
    return ranks


def analyze_model(model: FileModel, hierarchy: dict[str, int]) -> list[Finding]:
    findings: list[Finding] = []
    rel = model.rel
    in_determinism = rel.startswith(DETERMINISM_PREFIXES)
    in_durability = rel.startswith(DURABILITY_PREFIXES)
    in_replication = rel.startswith(REPLICATION_PREFIXES)

    # --- determinism pattern rules (line-exact in both modes) -------------
    if in_determinism:
        for idx, code in enumerate(model.code_lines):
            line_no = idx + 1
            if RE_RAND.search(code):
                findings.append(Finding(rel, line_no, "nondet-rand",
                                        RULES["nondet-rand"]))
            if RE_CLOCK.search(code):
                findings.append(Finding(rel, line_no, "nondet-clock",
                                        RULES["nondet-clock"]))
            if RE_ADDR_HASH.search(code):
                findings.append(Finding(rel, line_no, "nondet-addr-hash",
                                        RULES["nondet-addr-hash"]))

        # --- unordered iteration feeding a checksum -----------------------
        if model.feeds_checksum:
            for fn in model.functions:
                for ev in fn.events:
                    if ev.kind == "range_for" and ev.name in model.unordered_names:
                        findings.append(Finding(
                            rel, ev.line, "nondet-unordered-iter",
                            f"range-for over unordered container "
                            f"'{ev.name}' in a checksum-feeding file; "
                            "iteration order is hash-seed dependent"))

    # --- durability order -------------------------------------------------
    if in_durability:
        # Routing: every storage syscall must flow through the Vfs layer,
        # so FaultyVfs chaos (error injection, power cuts) covers it. Only
        # the PosixVfs backend itself may touch the raw calls.
        if rel != VFS_BACKEND:
            for idx, code in enumerate(model.code_lines):
                for m in RE_RAW_SYSCALL.finditer(code):
                    findings.append(Finding(
                        rel, idx + 1, "durability-vfs-routing",
                        f"raw ::{m.group(1)}() bypasses the Vfs layer; "
                        "route it through serve::Vfs so fault injection "
                        "and power-cut simulation cover it"))
        for fn in model.functions:
            calls = [e for e in fn.events if e.kind == "call"]
            sync_lines = [e.line for e in calls
                          if e.name in ("fsync", "fdatasync")]
            dirsync_lines = [e.line for e in calls
                             if e.name == "fsync_parent_dir"]
            for ev in calls:
                # A wrapper's own definition scans as a call to itself in
                # token mode (the signature line) and legitimately names
                # the wrapped primitive in its body (PosixVfs::rename
                # calls ::rename); the ordering rules target call *sites*,
                # not the wrappers.
                if ev.name == fn.name:
                    continue
                if ev.name == "rename":
                    if not any(s < ev.line for s in sync_lines):
                        findings.append(Finding(
                            rel, ev.line, "durability-rename-fsync",
                            "rename() with no fsync/fdatasync earlier in "
                            f"'{fn.name}'; the renamed file's contents may "
                            "not be durable"))
                    if not any(d > ev.line for d in dirsync_lines):
                        findings.append(Finding(
                            rel, ev.line, "durability-rename-dirsync",
                            "rename() with no fsync_parent_dir() afterwards "
                            f"in '{fn.name}'; the directory entry may not "
                            "survive a crash"))
                elif ev.name == "write_all":
                    if not any(s > ev.line
                               for s in sync_lines + dirsync_lines):
                        findings.append(Finding(
                            rel, ev.line, "durability-wal-sync",
                            f"write_all() in '{fn.name}' with no following "
                            "fsync/fdatasync; bytes may be externalized "
                            "before they are durable"))

    # --- replication ordering ---------------------------------------------
    # Same shape as the durability rules: call-ordering invariants inside a
    # single function, applied only under src/serve/replication. The
    # fn.name guard skips the trigger's own definition (its signature line
    # scans as a call in token mode, like write_all above).
    if in_replication:
        for fn in model.functions:
            calls = [e for e in fn.events if e.kind == "call"]

            def earlier(name: str, before: int) -> bool:
                return any(c.name == name and c.line < before for c in calls)

            for ev in calls:
                if ev.name == fn.name:
                    continue
                if ev.name == "send_ack" and \
                        not earlier("apply_replicated", ev.line):
                    findings.append(Finding(
                        rel, ev.line, "replication-ack-apply",
                        f"send_ack() in '{fn.name}' with no earlier "
                        "apply_replicated(); the standby would acknowledge "
                        "records it has not applied"))
                elif ev.name == "release_wals_below" and \
                        not earlier("latest_ack", ev.line):
                    findings.append(Finding(
                        rel, ev.line, "replication-release-ack",
                        f"release_wals_below() in '{fn.name}' with no "
                        "earlier latest_ack(); the primary would retire WAL "
                        "generations the standby never confirmed"))
                elif ev.name == "mark_promoted" and \
                        not earlier("checkpoint", ev.line):
                    findings.append(Finding(
                        rel, ev.line, "replication-promote-checkpoint",
                        f"mark_promoted() in '{fn.name}' with no earlier "
                        "checkpoint(); caught-up state must be durable "
                        "before the promoted controller admits"))

    # --- lock order (all of src/) -----------------------------------------
    # A scoped lock is held from its acquisition until its block closes:
    # token mode pops via per-line depthmarks (end-of-line depth below the
    # acquisition depth == the lock's block closed on that line), AST mode
    # pops via the recorded scope-end line. Two locks in the same block are
    # both held; locks in sibling blocks are not.
    for fn in model.functions:
        held: list[Event] = []
        for ev in fn.events:
            if ev.kind == "depthmark":
                held = [h for h in held if h.depth <= ev.depth]
                continue
            if ev.kind != "acquire":
                continue
            held = [h for h in held if h.until is None or ev.line <= h.until]
            rank = hierarchy.get(ev.name)
            if rank is None:
                findings.append(Finding(
                    rel, ev.line, "lock-order",
                    f"lock '{ev.name}' is not declared in "
                    "tools/lock_hierarchy.txt; add it at its place in the "
                    "acquisition order"))
                continue
            for h in held:
                held_rank = hierarchy[h.name]
                if held_rank >= rank:
                    what = ("re-acquires" if held_rank == rank
                            else "inverts the declared order:")
                    findings.append(Finding(
                        rel, ev.line, "lock-order",
                        f"{what} '{ev.name}' (rank {rank}) acquired while "
                        f"holding '{h.name}' (rank {held_rank}) in "
                        f"'{fn.name}'"))
            held.append(ev)
    return findings


def analyze_tree(root: Path, *, mode: str,
                 build_dir: Path | None) -> tuple[list[Finding], str]:
    """Analyzes every .hpp/.cpp under <root>/src. Returns (findings, mode)."""
    hierarchy = load_hierarchy(Path(__file__).resolve().parent /
                               "lock_hierarchy.txt")
    cindex = None
    effective = "token"
    if mode in ("auto", "ast"):
        cindex = load_libclang()
        if cindex is not None:
            effective = "ast"
        elif mode == "ast":
            raise RuntimeError(
                "--mode ast requires the libclang python bindings "
                "(pip install libclang)")

    src = root / "src"
    if not src.is_dir():
        raise FileNotFoundError(f"no src/ directory under {root}")

    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        model = None
        if effective == "ast":
            try:
                model = build_model_ast(cindex, path, rel, build_dir)
            except Exception as exc:  # fall back per file, stay usable
                print(f"vnfr_asa: AST parse failed for {rel} ({exc}); "
                      "token fallback", file=sys.stderr)
        if model is None:
            model = build_model_token(path, rel)
        file_findings = analyze_model(model, hierarchy)
        covered, suppression_findings = vf.scan_suppressions(
            model.raw_lines, tool=TOOL, rel=rel, known_rules=set(RULES))
        findings.extend(vf.apply_suppressions(file_findings, covered))
        findings.extend(suppression_findings)
    return findings, effective


# --------------------------------------------------------------------------
# Fixtures / self-check
# --------------------------------------------------------------------------

RE_EXPECT = re.compile(r"//\s*expect:\s*([\w\-, ]+)")


def expected_findings(fixture_root: Path) -> dict[tuple[str, int], set[str]]:
    """Parses ``// expect: rule[, rule]`` markers from fixture sources."""
    expects: dict[tuple[str, int], set[str]] = {}
    for path in sorted((fixture_root / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(fixture_root).as_posix()
        for idx, raw in enumerate(path.read_text(encoding="utf-8").splitlines()):
            m = RE_EXPECT.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                expects.setdefault((rel, idx + 1), set()).update(rules)
    return expects


def self_check(root: Path) -> int:
    """Verifies the rule registry against the fixtures: every rule has at
    least one positive fixture, every expectation fires, and nothing
    unexpected fires inside the fixture tree."""
    fixture_root = root / "tests" / "analysis" / "fixtures" / "asa"
    if not (fixture_root / "src").is_dir():
        print(f"vnfr_asa --self-check: no fixtures under {fixture_root}",
              file=sys.stderr)
        return 2

    expects = expected_findings(fixture_root)
    findings, _ = analyze_tree(fixture_root, mode="token", build_dir=None)
    got: dict[tuple[str, int], set[str]] = {}
    for f in findings:
        got.setdefault((f.path, f.line), set()).add(f.rule)

    errors: list[str] = []
    covered_rules = set()
    for key, rules in expects.items():
        covered_rules.update(rules)
        missing = rules - got.get(key, set())
        for rule in sorted(missing):
            errors.append(f"{key[0]}:{key[1]}: expected {rule} did not fire")
    for key, rules in got.items():
        unexpected = rules - expects.get(key, set())
        for rule in sorted(unexpected):
            errors.append(f"{key[0]}:{key[1]}: unexpected finding {rule}")
    for rule in sorted(set(RULES) - covered_rules):
        errors.append(f"rule '{rule}' has no positive fixture under "
                      f"{fixture_root}/src")

    for e in errors:
        print(f"vnfr_asa --self-check: {e}")
    if errors:
        print(f"vnfr_asa --self-check: {len(errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"vnfr_asa --self-check: ok ({len(RULES)} rules, "
          f"{len(expects)} expectation site(s))")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="vnfr_asa.py",
        description="repo-specific determinism/durability/lock-order analyzer")
    parser.add_argument("root", nargs="?", default=None,
                        help="repo root (default: the checkout this tool is in)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON object")
    parser.add_argument("--mode", choices=("auto", "ast", "token"),
                        default="auto",
                        help="front end: auto prefers libclang, token forces "
                             "the regex fallback")
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(ast mode)")
    parser.add_argument("--self-check", action="store_true",
                        help="verify every rule has a firing positive fixture")
    args = parser.parse_args(argv[1:])

    root = (Path(args.root).resolve() if args.root
            else Path(__file__).resolve().parent.parent)
    if args.self_check:
        return self_check(root)

    build_dir = Path(args.build_dir).resolve() if args.build_dir else None
    try:
        findings, mode = analyze_tree(root, mode=args.mode, build_dir=build_dir)
    except (FileNotFoundError, RuntimeError, ValueError) as exc:
        print(f"vnfr_asa: {exc}", file=sys.stderr)
        return 2
    return vf.emit(findings, tool="vnfr_asa", rules=RULES,
                   json_mode=args.json, mode=mode)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
