// Embedded real-world backbone topologies.
//
// The paper evaluates on graphs from the Internet Topology Zoo [18]; the
// dataset itself is not shipped here, so we embed well-known published
// backbone topologies (node names, approximate geographic coordinates and
// link lists) as data. Link weights are the Euclidean distance between the
// endpoints' coordinates, matching the zoo's common usage.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/graph.hpp"

namespace vnfr::net {

/// Topologies available via `load_topology`.
/// - "abilene":   Internet2 Abilene, 11 nodes / 14 links (US research net)
/// - "nsfnet":    NSFNET T1 backbone, 14 nodes / 21 links
/// - "geant":     GEANT European research network, 23 nodes / 37 links
/// - "att":       AT&T North America IP backbone (simplified), 25 nodes
/// - "internet2": Internet2 OS3E wave network (simplified), 34 nodes
/// - "cost266":   COST 266 pan-European reference network, 36 nodes
std::vector<std::string> topology_names();

/// Loads a named topology; throws std::invalid_argument for unknown names.
Graph load_topology(std::string_view name);

}  // namespace vnfr::net
