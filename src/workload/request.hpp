// A user request rho_i = (f_i, R_i, a_i, d_i, pay_i) (paper Section III.B):
// the VNF type requested, the reliability requirement, the arrival slot,
// the execution duration in slots, and the payment collected if admitted.
#pragma once

#include "common/types.hpp"

namespace vnfr::workload {

struct Request {
    RequestId id;
    VnfTypeId vnf;
    double requirement{0};  ///< R_i in (0, 1)
    TimeSlot arrival{0};    ///< a_i, 0-based slot index
    TimeSlot duration{1};   ///< d_i >= 1 slots
    double payment{0};      ///< pay_i > 0
    /// AP through which the mobile user issues the request (Section III.A:
    /// "mobile users issue their requests through their nearby APs").
    /// Optional — invalid when the workload is network-agnostic; used for
    /// access-distance reporting, never for admission decisions.
    NodeId source{};

    /// One past the last occupied slot: the request occupies
    /// [arrival, arrival + duration), i.e. slots a_i .. a_i + d_i - 1.
    [[nodiscard]] TimeSlot end() const { return arrival + duration; }

    /// The paper's V_i[t]: 1 when slot t falls in the execution window.
    [[nodiscard]] bool covers(TimeSlot t) const { return t >= arrival && t < end(); }

    /// The paper only considers requests fully inside the horizon
    /// (a_i + d_i - 1 in T); true when this one is.
    [[nodiscard]] bool fits_horizon(TimeSlot horizon) const {
        return arrival >= 0 && duration >= 1 && end() <= horizon;
    }
};

}  // namespace vnfr::workload
