# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vnfrsim_help "/root/repo/build/tools/vnfrsim" "--help")
set_tests_properties(vnfrsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vnfrsim_basic_run "/root/repo/build/tools/vnfrsim" "--requests" "40" "--seeds" "2" "--topology" "abilene" "--cloudlets" "5")
set_tests_properties(vnfrsim_basic_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vnfrsim_csv_offline "/root/repo/build/tools/vnfrsim" "--requests" "30" "--seeds" "1" "--csv" "--offline-bound" "--algorithms" "onsite-primal-dual,onsite-greedy")
set_tests_properties(vnfrsim_csv_offline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vnfrsim_failures_google "/root/repo/build/tools/vnfrsim" "--requests" "30" "--seeds" "1" "--profile" "google" "--inject-failures")
set_tests_properties(vnfrsim_failures_google PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vnfrsim_rejects_unknown_flag "/root/repo/build/tools/vnfrsim" "--bogus")
set_tests_properties(vnfrsim_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vnfrsim_rejects_unknown_algorithm "/root/repo/build/tools/vnfrsim" "--algorithms" "not-a-scheduler")
set_tests_properties(vnfrsim_rejects_unknown_algorithm PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
