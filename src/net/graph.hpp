// Undirected weighted graph modelling the MEC access network G = (V, E):
// nodes are access points (APs), edges are links between APs.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vnfr::net {

/// One endpoint record in a node's adjacency list.
struct Adjacency {
    NodeId neighbor;
    double weight;       ///< Link weight (latency/length); must be > 0.
    std::size_t edge_id; ///< Index into Graph's edge table.
};

struct Edge {
    NodeId a;
    NodeId b;
    double weight;
};

/// Undirected simple graph with positive edge weights. Nodes carry optional
/// names and 2D coordinates (used by Waxman generation and by the embedded
/// real topologies for distance-proportional weights).
class Graph {
  public:
    Graph() = default;

    /// Create `count` isolated nodes at once.
    explicit Graph(std::size_t count);

    /// Adds a node, returns its id. Name is optional and for reporting only.
    NodeId add_node(std::string name = {}, double x = 0.0, double y = 0.0);

    /// Adds an undirected edge. Throws std::invalid_argument on self-loops,
    /// unknown endpoints, non-positive weight or duplicate edges.
    std::size_t add_edge(NodeId a, NodeId b, double weight = 1.0);

    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

    [[nodiscard]] bool has_node(NodeId v) const;
    [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
    [[nodiscard]] std::optional<double> edge_weight(NodeId a, NodeId b) const;

    [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const;
    [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

    [[nodiscard]] const std::string& node_name(NodeId v) const;
    [[nodiscard]] double node_x(NodeId v) const;
    [[nodiscard]] double node_y(NodeId v) const;

    [[nodiscard]] std::size_t degree(NodeId v) const;

    /// Euclidean distance between node coordinates.
    [[nodiscard]] double euclidean(NodeId a, NodeId b) const;

  private:
    struct Node {
        std::string name;
        double x{0};
        double y{0};
        std::vector<Adjacency> adj;
    };

    void check_node(NodeId v, const char* what) const;

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
};

}  // namespace vnfr::net
