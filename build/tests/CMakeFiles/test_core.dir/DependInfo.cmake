
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_bounds.cpp" "tests/CMakeFiles/test_core.dir/test_core_bounds.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_bounds.cpp.o.d"
  "/root/repo/tests/test_core_competitive.cpp" "tests/CMakeFiles/test_core.dir/test_core_competitive.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_competitive.cpp.o.d"
  "/root/repo/tests/test_core_greedy.cpp" "tests/CMakeFiles/test_core.dir/test_core_greedy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_greedy.cpp.o.d"
  "/root/repo/tests/test_core_hybrid.cpp" "tests/CMakeFiles/test_core.dir/test_core_hybrid.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_hybrid.cpp.o.d"
  "/root/repo/tests/test_core_offline.cpp" "tests/CMakeFiles/test_core.dir/test_core_offline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_offline.cpp.o.d"
  "/root/repo/tests/test_core_offsite.cpp" "tests/CMakeFiles/test_core.dir/test_core_offsite.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_offsite.cpp.o.d"
  "/root/repo/tests/test_core_onsite.cpp" "tests/CMakeFiles/test_core.dir/test_core_onsite.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_onsite.cpp.o.d"
  "/root/repo/tests/test_core_rejection.cpp" "tests/CMakeFiles/test_core.dir/test_core_rejection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_rejection.cpp.o.d"
  "/root/repo/tests/test_core_verify.cpp" "tests/CMakeFiles/test_core.dir/test_core_verify.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vnfr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vnfr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/vnfr_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/vnfr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/vnfr_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vnfr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vnfr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/vnfr_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vnfr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vnfr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
