#include "edge/visualization.hpp"

#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "net/topology_zoo.hpp"

namespace vnfr::edge {
namespace {

TEST(Visualization, GraphDotContainsAllNodesAndEdges) {
    const net::Graph g = net::ring(4);
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("graph vnfr {"), std::string::npos);
    for (int v = 0; v < 4; ++v) {
        EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos);
    }
    // A ring of 4 has 4 undirected edges.
    std::size_t edges = 0;
    for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
         pos = dot.find(" -- ", pos + 1)) {
        ++edges;
    }
    EXPECT_EQ(edges, 4u);
}

TEST(Visualization, NamedNodesUseTheirNames) {
    const net::Graph g = net::load_topology("abilene");
    const std::string dot = to_dot(g);
    EXPECT_NE(dot.find("Seattle"), std::string::npos);
    EXPECT_NE(dot.find("NewYork"), std::string::npos);
}

TEST(Visualization, CloudletsAreHighlighted) {
    MecNetwork mec(net::ring(5));
    mec.add_cloudlet(NodeId{2}, 42.0, 0.97);
    const std::string dot = to_dot(mec);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
    EXPECT_NE(dot.find("cap=42"), std::string::npos);
    EXPECT_NE(dot.find("r=0.97"), std::string::npos);
}

TEST(Visualization, CoordinateEmissionToggle) {
    const net::Graph g = net::load_topology("abilene");
    DotOptions with;
    with.use_coordinates = true;
    DotOptions without;
    without.use_coordinates = false;
    EXPECT_NE(to_dot(g, with).find("pos=\""), std::string::npos);
    EXPECT_EQ(to_dot(g, without).find("pos=\""), std::string::npos);
}

TEST(Visualization, CustomGraphName) {
    DotOptions opts;
    opts.graph_name = "mec_demo";
    EXPECT_NE(to_dot(net::ring(3), opts).find("graph mec_demo {"), std::string::npos);
}

}  // namespace
}  // namespace vnfr::edge
