# Empty dependencies file for fig2a_payment_ratio.
# This may be replaced when dependencies are built.
