#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/instance.hpp"

namespace vnfr::core {

void validate_scheduler_state(const SchedulerState& state, std::size_t cloudlets,
                              TimeSlot horizon) {
    const auto slots = static_cast<std::size_t>(horizon);
    if (state.lambda.size() != cloudlets) {
        throw std::invalid_argument(
            "SchedulerState: " + std::to_string(state.lambda.size()) +
            " lambda rows for " + std::to_string(cloudlets) + " cloudlets");
    }
    for (std::size_t j = 0; j < cloudlets; ++j) {
        if (state.lambda[j].size() != slots) {
            throw std::invalid_argument(
                "SchedulerState: lambda row " + std::to_string(j) + " has " +
                std::to_string(state.lambda[j].size()) + " slots, expected " +
                std::to_string(slots));
        }
        for (std::size_t t = 0; t < slots; ++t) {
            const double v = state.lambda[j][t];
            if (!std::isfinite(v) || v < 0.0) {
                throw std::invalid_argument("SchedulerState: lambda[" + std::to_string(j) +
                                            "][" + std::to_string(t) +
                                            "] is not a finite non-negative price");
            }
        }
    }
    if (state.usage.size() != cloudlets * slots) {
        throw std::invalid_argument(
            "SchedulerState: usage table has " + std::to_string(state.usage.size()) +
            " cells, expected " + std::to_string(cloudlets * slots));
    }
    for (std::size_t i = 0; i < state.usage.size(); ++i) {
        if (!std::isfinite(state.usage[i]) || state.usage[i] < 0.0) {
            throw std::invalid_argument("SchedulerState: usage cell " + std::to_string(i) +
                                        " is not a finite non-negative amount");
        }
    }
}

SchedulerState OnlineScheduler::export_state() const {
    throw std::logic_error(std::string(name()) + " does not support state export");
}

void OnlineScheduler::import_state(const SchedulerState&) {
    throw std::logic_error(std::string(name()) + " does not support state import");
}

double Placement::compute_per_slot(double per_instance) const {
    double total = 0.0;
    for (const Site& s : sites) total += per_instance * s.replicas;
    return total;
}

ScheduleResult run_online(const Instance& instance, OnlineScheduler& scheduler) {
    ScheduleResult result;
    result.decisions.reserve(instance.requests.size());
    for (const workload::Request& r : instance.requests) {
        Decision d = scheduler.decide(r);
        if (d.admitted) {
            result.revenue += r.payment;
            ++result.admitted;
        }
        result.decisions.push_back(std::move(d));
    }
    const edge::ResourceLedger& ledger = scheduler.ledger();
    result.max_overshoot = ledger.max_overshoot();
    for (std::size_t j = 0; j < ledger.cloudlet_count(); ++j) {
        const CloudletId c{static_cast<std::int64_t>(j)};
        for (TimeSlot t = 0; t < ledger.horizon(); ++t) {
            result.max_load_factor =
                std::max(result.max_load_factor, ledger.usage(c, t) / ledger.capacity(c));
        }
    }
    return result;
}

double acceptance_ratio(const ScheduleResult& result, const Instance& instance) {
    if (instance.requests.empty()) return 0.0;
    return static_cast<double>(result.admitted) /
           static_cast<double>(instance.requests.size());
}

const char* to_string(RejectReason reason) {
    switch (reason) {
        case RejectReason::kNone: return "none";
        case RejectReason::kInfeasibleRequirement: return "infeasible-requirement";
        case RejectReason::kPricedOut: return "priced-out";
        case RejectReason::kNoCapacity: return "no-capacity";
    }
    return "?";
}

RejectionBreakdown rejection_breakdown(const ScheduleResult& result) {
    RejectionBreakdown breakdown;
    for (const Decision& d : result.decisions) {
        if (d.admitted) continue;
        switch (d.reject_reason) {
            case RejectReason::kInfeasibleRequirement:
                ++breakdown.infeasible_requirement;
                break;
            case RejectReason::kPricedOut: ++breakdown.priced_out; break;
            case RejectReason::kNoCapacity: ++breakdown.no_capacity; break;
            case RejectReason::kNone: break;
        }
    }
    return breakdown;
}

}  // namespace vnfr::core
