// Thread-scaling bench for the parallel Monte-Carlo experiment engine.
//
// Runs the Figure 1(a) sweep (on-site primal-dual vs greedy, request count
// swept) once per thread count, measuring wall clock and asserting that
// the aggregated metrics checksum is bit-identical at every thread count —
// the engine's determinism contract, checked on the real workload, not
// just the unit tests. Emits a machine-readable JSON artifact:
//
//   BENCH_parallel_experiments.json
//     { sweep, seeds, thread_counts, results: [ {threads, seconds,
//       speedup_vs_serial, checksum} ], checksums_identical, ... }
//
// Usage: parallel_experiments [output.json]
//   VNFR_BENCH_QUICK=1  shrink the sweep for smoke/CI runs
//   VNFR_THREADS        does NOT apply here: thread counts are swept
//                       explicitly so the artifact records the scaling curve.
//
// Exit status is nonzero when any thread count produced a different
// checksum, so CI fails loudly on a determinism regression.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "report/json.hpp"
#include "sim/scenarios.hpp"

using namespace vnfr;

namespace {

struct ThreadResult {
    std::size_t threads{0};
    double seconds{0};
    std::uint64_t checksum{0};
    double revenue_sum{0};  ///< summed admitted revenue over the whole sweep
};

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path =
        argc > 1 ? argv[1] : std::string("BENCH_parallel_experiments.json");

    const std::vector<std::size_t> sweep =
        bench::quick_mode() ? std::vector<std::size_t>{100, 200}
                            : std::vector<std::size_t>{100, 200, 300, 400,
                                                       500, 600, 700, 800};
    const std::size_t seeds = bench::quick_mode() ? 4 : 8;
    const std::vector<sim::Algorithm> algorithms{sim::Algorithm::kOnsitePrimalDual,
                                                 sim::Algorithm::kOnsiteGreedy};
    std::vector<std::size_t> thread_counts{1, 2, 4, 8};

    std::cout << "== Parallel experiment engine: fig1a sweep vs thread count ==\n"
              << "hardware threads: " << std::thread::hardware_concurrency() << "\n\n";

    const auto run_sweep = [&](std::size_t threads) {
        ThreadResult r;
        r.threads = threads;
        const auto start = std::chrono::steady_clock::now();
        for (const std::size_t n : sweep) {
            sim::ExperimentConfig cfg;
            cfg.algorithms = algorithms;
            cfg.seeds = seeds;
            cfg.base_seed = bench::scenario_seed("fig1a", n);
            cfg.threads = threads;
            const sim::ExperimentOutcome outcome =
                sim::run_experiment(bench::make_factory(bench::paper_environment(n)), cfg);
            // Order-sensitive fold over sweep points: any metric drift at
            // any point changes the final checksum.
            r.checksum = common::stream_seed(r.checksum, sim::metrics_checksum(outcome));
            for (const auto& alg : outcome.per_algorithm) r.revenue_sum += alg.revenue.sum();
        }
        r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count();
        return r;
    };

    std::vector<ThreadResult> results;
    results.reserve(thread_counts.size());
    for (const std::size_t t : thread_counts) {
        results.push_back(run_sweep(t));
        const ThreadResult& r = results.back();
        std::cout << "threads=" << r.threads << "  wall=" << r.seconds << "s"
                  << "  speedup=" << results.front().seconds / r.seconds
                  << "  checksum=" << report::hex_u64(r.checksum) << '\n';
    }

    bool identical = true;
    for (const ThreadResult& r : results) {
        identical = identical && r.checksum == results.front().checksum;
    }
    std::cout << (identical ? "\nmetrics bit-identical across all thread counts\n"
                            : "\nDETERMINISM VIOLATION: checksums differ\n");

    report::JsonValue doc = report::JsonValue::object();
    doc.set("bench", "parallel_experiments");
    doc.set("workload", "fig1a revenue sweep (onsite primal-dual + greedy)");
    doc.set("quick_mode", bench::quick_mode());
    doc.set("hardware_concurrency",
            static_cast<std::size_t>(std::thread::hardware_concurrency()));
    report::JsonValue sweep_json = report::JsonValue::array();
    for (const std::size_t n : sweep) sweep_json.push(n);
    doc.set("sweep_requests", std::move(sweep_json));
    doc.set("seeds_per_point", seeds);
    report::JsonValue results_json = report::JsonValue::array();
    for (const ThreadResult& r : results) {
        report::JsonValue row = report::JsonValue::object();
        row.set("threads", r.threads);
        row.set("wall_seconds", r.seconds);
        row.set("speedup_vs_serial", results.front().seconds / r.seconds);
        row.set("metrics_checksum", report::hex_u64(r.checksum));
        row.set("admitted_revenue_sum", r.revenue_sum);
        results_json.push(std::move(row));
    }
    doc.set("results", std::move(results_json));
    doc.set("checksums_identical", identical);

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << " for writing\n";
        return 2;
    }
    out << doc.dump(2) << '\n';
    std::cout << "wrote " << out_path << '\n';

    return identical ? 0 : 1;
}
