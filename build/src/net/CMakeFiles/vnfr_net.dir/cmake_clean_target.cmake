file(REMOVE_RECURSE
  "libvnfr_net.a"
)
