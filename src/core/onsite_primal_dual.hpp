// Algorithm 1 of the paper: online primal-dual scheduling for the VNF
// service reliability problem under the ON-SITE backup scheme.
//
// Per request rho_i:
//   1. For every cloudlet c_j with r(c_j) > R_i, compute the replica count
//      N_ij (Eq. 3) and the dual price
//          price_j = sum_{t in window} N_ij * c(f_i) * lambda_{tj}.
//   2. Pick the cheapest cloudlet j'. Admit iff pay_i - price_{j'} > 0.
//   3. On admission set delta_i = pay_i - price_{j'} (Eq. 33) and bump the
//      window's duals multiplicatively (Eq. 34):
//          lambda_{tj'} <- lambda_{tj'} * (1 + N*c/cap) + N*c*pay / (d*cap).
//
// Theorem 1: competitive ratio 1 + a_max with the per-cloudlet capacity
// violation bounded by xi (Lemma 8), a_max = max_{ij} N_ij c(f_i).
//
// Two variants, selected by config:
//   * pure (enforce_capacity = false): exactly Algorithm 1; reservations
//     may overshoot capacity (ledger in kRecord mode) within the xi bound.
//   * capacity-checked (enforce_capacity = true, default): the variant the
//     paper evaluates (its "scaling approach" guarantees no real violation);
//     cloudlets whose residual capacity cannot host the replicas are
//     excluded from the arg-min.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "edge/resource_ledger.hpp"

namespace vnfr::core {

struct OnsitePrimalDualConfig {
    bool enforce_capacity{true};
    /// The paper's evaluation uses the scaling approach of [14]: the dual
    /// updates are computed against an augmented capacity
    /// `dual_capacity_scale * cap_j` (so prices rise slowly enough to fill
    /// real capacity) while real capacity is enforced at admission time.
    /// 1.0 reproduces the literal Eq. 34, whose prices saturate a cloudlet
    /// slot at roughly usage cap/a (a = N_ij c(f_i)); values around the
    /// typical `a` of the workload let the checked variant reach full
    /// utilization. 0 (default) picks the scale automatically from the
    /// catalog and cloudlet reliabilities. Ignored by the pure variant,
    /// which must follow Eq. 34 exactly for Theorem 1 to apply.
    double dual_capacity_scale{0.0};
    /// Record delta_i per decide() into deltas(). The per-request deltas
    /// only feed competitive-ratio analysis; a long-running server (or a
    /// caller that decides window-disjoint requests concurrently — the
    /// serve layer's wave-parallel pipeline) turns it off: the vector
    /// grows without bound and is the one piece of decide() state shared
    /// across otherwise-disjoint requests.
    bool track_deltas{true};
};

class OnsitePrimalDual final : public OnlineScheduler {
  public:
    /// Keeps a reference to `instance`; the caller must keep it alive for
    /// the scheduler's lifetime.
    explicit OnsitePrimalDual(const Instance& instance, OnsitePrimalDualConfig config = {});

    Decision decide(const workload::Request& request) override;
    [[nodiscard]] const edge::ResourceLedger& ledger() const override { return ledger_; }
    [[nodiscard]] std::string_view name() const override;

    /// Dual price lambda_{tj}; exposed so tests can assert dual feasibility
    /// (constraint 32) as an invariant.
    [[nodiscard]] double lambda(CloudletId j, TimeSlot t) const;

    /// delta_i of the requests admitted so far (0 for rejected ones),
    /// indexed by processing order.
    [[nodiscard]] const std::vector<double>& deltas() const { return deltas_; }

    /// N_ij for `request` on cloudlet j; nullopt when r(c_j) <= R_i.
    [[nodiscard]] std::optional<int> replica_count(const workload::Request& request,
                                                   CloudletId j) const;

    /// The dual admission price sum_t V_i[t] N_ij c(f_i) lambda_{tj} for
    /// `request` on cloudlet j; nullopt when the cloudlet is infeasible.
    [[nodiscard]] std::optional<double> dual_price(const workload::Request& request,
                                                   CloudletId j) const;

    /// The capacity scale actually used in the dual updates (1 for the
    /// pure variant; the configured or auto-derived value otherwise).
    [[nodiscard]] double dual_capacity_scale() const { return dual_scale_; }

    /// State export/import for the serve layer's crash-consistent
    /// checkpointing: decide() is a deterministic function of (instance,
    /// config, lambda, ledger usage), so a restored scheduler reproduces
    /// every future decision bit-identically. import_state resets deltas()
    /// (analysis-only output, not decision state).
    [[nodiscard]] bool supports_state_io() const override { return true; }
    [[nodiscard]] SchedulerState export_state() const override;
    void import_state(const SchedulerState& state) override;

  private:
    const Instance& instance_;
    OnsitePrimalDualConfig config_;
    edge::ResourceLedger ledger_;
    double dual_scale_{1.0};
    std::vector<std::vector<double>> lambda_;  ///< [cloudlet][slot]
    std::vector<double> deltas_;
};

}  // namespace vnfr::core
