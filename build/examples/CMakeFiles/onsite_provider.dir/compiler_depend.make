# Empty compiler generated dependencies file for onsite_provider.
# This may be replaced when dependencies are built.
