// Binary framing primitives for the serve layer's durable state files:
// little-endian encode/decode buffers, CRC-32 (IEEE 802.3, the zlib
// polynomial) for integrity guards, and the error type every corrupt
// snapshot/WAL path reports through.
//
// Every multi-byte value is written little-endian regardless of host
// order, and doubles travel as their IEEE-754 bit pattern, so files are
// byte-identical across machines and re-reading them reconstructs values
// bit-for-bit — the foundation of the controller's bit-identical
// recovery guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace vnfr::serve {

/// Thrown whenever a snapshot or WAL file fails validation. Always
/// carries the file (or a label for in-memory buffers), the byte offset
/// of the first inconsistent byte, and a description — fuzzed inputs
/// must die here with a diagnosable position, never as UB.
class CorruptStateError : public std::runtime_error {
  public:
    CorruptStateError(std::string file, std::uint64_t offset, const std::string& what)
        : std::runtime_error(file + ": " + what + " (at byte offset " +
                             std::to_string(offset) + ")"),
          file_(std::move(file)),
          offset_(offset) {}

    [[nodiscard]] const std::string& file() const { return file_; }
    [[nodiscard]] std::uint64_t offset() const { return offset_; }

  private:
    std::string file_;
    std::uint64_t offset_;
};

/// CRC-32 of `data`. `seed` chains incremental computation:
/// crc32(a + b) == crc32(b, crc32(a)).
[[nodiscard]] std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Append-only little-endian encoder over a growable byte buffer.
class WireWriter {
  public:
    void put_u8(std::uint8_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    void put_i64(std::int64_t v);
    /// IEEE-754 bit pattern, so round-trips are bit-exact (NaNs included).
    void put_f64(double v);
    void put_bytes(std::string_view bytes);

    [[nodiscard]] const std::string& bytes() const { return buffer_; }
    [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  private:
    std::string buffer_;
};

/// Little-endian decoder over a byte buffer. Every getter names what it
/// is reading; running past the end throws CorruptStateError pointing at
/// the exact offset where the bytes ran out.
class WireReader {
  public:
    /// `label` names the source in errors; `base_offset` is added to all
    /// reported offsets (so a reader over one WAL record payload reports
    /// file-absolute positions).
    WireReader(std::string_view data, std::string label, std::uint64_t base_offset = 0)
        : data_(data), label_(std::move(label)), base_(base_offset) {}

    std::uint8_t get_u8(const char* what);
    std::uint32_t get_u32(const char* what);
    std::uint64_t get_u64(const char* what);
    std::int64_t get_i64(const char* what);
    double get_f64(const char* what);
    std::string_view get_bytes(std::size_t n, const char* what);

    /// Throws unless the buffer was consumed exactly.
    void require_end(const char* what) const;

    /// File-absolute offset of the next unread byte.
    [[nodiscard]] std::uint64_t offset() const { return base_ + pos_; }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

    [[noreturn]] void fail(const std::string& what) const;

  private:
    std::string_view data_;
    std::string label_;
    std::uint64_t base_;
    std::size_t pos_{0};
};

class Vfs;

/// Reads a whole file into memory through `vfs`. Throws VfsError on IO
/// errors and CorruptStateError (offset 0) if the file does not exist.
[[nodiscard]] std::string read_file(Vfs& vfs, const std::string& path);

/// read_file through the process-wide PosixVfs.
[[nodiscard]] std::string read_file(const std::string& path);

/// Crash-consistent whole-file replace through `vfs`: writes `bytes` to
/// `path + ".tmp"`, fsyncs it, renames over `path`, then fsyncs the
/// parent directory. After a crash anywhere in the sequence, `path`
/// holds either the old or the new content in full, never a mix. On
/// failure the temporary file is cleaned up (best effort) and no fd
/// leaks; failures throw VfsError.
void atomic_write_file(Vfs& vfs, const std::string& path, std::string_view bytes);

/// atomic_write_file through the process-wide PosixVfs.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// True when `path` exists in `vfs` (any file type).
[[nodiscard]] bool file_exists(Vfs& vfs, const std::string& path);

/// file_exists through the process-wide PosixVfs.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace vnfr::serve
