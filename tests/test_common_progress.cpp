#include "common/progress.hpp"

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

namespace vnfr::common {
namespace {

TEST(ProgressMeter, ReportsEveryTickInOrderWhenSerial) {
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    ProgressMeter meter(3, [&seen](std::size_t done, std::size_t total) {
        seen.emplace_back(done, total);
    });
    meter.tick();
    meter.tick();
    meter.tick();
    ASSERT_EQ(seen.size(), 3u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].first, i + 1);
        EXPECT_EQ(seen[i].second, 3u);
    }
}

TEST(ProgressMeter, EmptyCallbackIsANoOp) {
    ProgressMeter meter(5, ProgressFn{});
    meter.tick();  // must not crash or allocate a callback invocation
    meter.tick();
}

TEST(ProgressMeter, CountsAllTicksAcrossConcurrentCallers) {
    constexpr std::size_t kTicks = 512;
    std::size_t observed_max = 0;
    std::size_t calls = 0;
    ProgressMeter meter(kTicks,
                        [&](std::size_t done, std::size_t total) {
                            // The meter serializes callbacks under its lock,
                            // so unsynchronized writes here are safe.
                            ++calls;
                            if (done > observed_max) observed_max = done;
                            EXPECT_EQ(total, kTicks);
                        });
    ThreadPool pool(4);
    pool.parallel_for(0, kTicks, [&meter](std::size_t) { meter.tick(); });
    EXPECT_EQ(calls, kTicks);
    EXPECT_EQ(observed_max, kTicks);
}

}  // namespace
}  // namespace vnfr::common
