#include "net/graph.hpp"

#include <cmath>
#include <stdexcept>

namespace vnfr::net {

Graph::Graph(std::size_t count) { nodes_.resize(count); }

NodeId Graph::add_node(std::string name, double x, double y) {
    nodes_.push_back(Node{std::move(name), x, y, {}});
    return NodeId{static_cast<std::int64_t>(nodes_.size()) - 1};
}

std::size_t Graph::add_edge(NodeId a, NodeId b, double weight) {
    check_node(a, "add_edge endpoint a");
    check_node(b, "add_edge endpoint b");
    if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
    if (weight <= 0.0) throw std::invalid_argument("Graph::add_edge: non-positive weight");
    if (has_edge(a, b)) throw std::invalid_argument("Graph::add_edge: duplicate edge");
    const std::size_t id = edges_.size();
    edges_.push_back(Edge{a, b, weight});
    nodes_[a.index()].adj.push_back(Adjacency{b, weight, id});
    nodes_[b.index()].adj.push_back(Adjacency{a, weight, id});
    return id;
}

bool Graph::has_node(NodeId v) const {
    return v.valid() && v.index() < nodes_.size();
}

bool Graph::has_edge(NodeId a, NodeId b) const {
    if (!has_node(a) || !has_node(b)) return false;
    // Scan the smaller adjacency list.
    const Node& na = nodes_[a.index()];
    const Node& nb = nodes_[b.index()];
    const Node& shorter = na.adj.size() <= nb.adj.size() ? na : nb;
    const NodeId target = na.adj.size() <= nb.adj.size() ? b : a;
    for (const Adjacency& adj : shorter.adj) {
        if (adj.neighbor == target) return true;
    }
    return false;
}

std::optional<double> Graph::edge_weight(NodeId a, NodeId b) const {
    if (!has_node(a) || !has_node(b)) return std::nullopt;
    for (const Adjacency& adj : nodes_[a.index()].adj) {
        if (adj.neighbor == b) return adj.weight;
    }
    return std::nullopt;
}

std::span<const Adjacency> Graph::neighbors(NodeId v) const {
    check_node(v, "neighbors");
    return nodes_[v.index()].adj;
}

const std::string& Graph::node_name(NodeId v) const {
    check_node(v, "node_name");
    return nodes_[v.index()].name;
}

double Graph::node_x(NodeId v) const {
    check_node(v, "node_x");
    return nodes_[v.index()].x;
}

double Graph::node_y(NodeId v) const {
    check_node(v, "node_y");
    return nodes_[v.index()].y;
}

std::size_t Graph::degree(NodeId v) const {
    check_node(v, "degree");
    return nodes_[v.index()].adj.size();
}

double Graph::euclidean(NodeId a, NodeId b) const {
    check_node(a, "euclidean endpoint a");
    check_node(b, "euclidean endpoint b");
    const double dx = node_x(a) - node_x(b);
    const double dy = node_y(a) - node_y(b);
    return std::sqrt(dx * dx + dy * dy);
}

void Graph::check_node(NodeId v, const char* what) const {
    if (!has_node(v)) {
        throw std::invalid_argument(std::string("Graph: unknown node in ") + what);
    }
}

}  // namespace vnfr::net
