file(REMOVE_RECURSE
  "libvnfr_opt.a"
)
