#include "sim/experiment.hpp"

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/digest.hpp"
#include "common/thread_pool.hpp"
#include "core/greedy.hpp"
#include "core/hybrid_primal_dual.hpp"
#include "core/offsite_primal_dual.hpp"
#include "core/onsite_primal_dual.hpp"
#include "sim/metrics.hpp"

namespace vnfr::sim {

std::string_view algorithm_name(Algorithm algorithm) {
    switch (algorithm) {
        case Algorithm::kOnsitePrimalDual: return "onsite-primal-dual";
        case Algorithm::kOnsitePrimalDualPure: return "onsite-primal-dual-pure";
        case Algorithm::kOnsiteGreedy: return "onsite-greedy";
        case Algorithm::kOffsitePrimalDual: return "offsite-primal-dual";
        case Algorithm::kOffsiteGreedy: return "offsite-greedy";
        case Algorithm::kHybridPrimalDual: return "hybrid-primal-dual";
    }
    throw std::invalid_argument("algorithm_name: unknown algorithm");
}

std::unique_ptr<core::OnlineScheduler> make_scheduler(Algorithm algorithm,
                                                      const core::Instance& instance) {
    switch (algorithm) {
        case Algorithm::kOnsitePrimalDual:
            return std::make_unique<core::OnsitePrimalDual>(instance);
        case Algorithm::kOnsitePrimalDualPure:
            return std::make_unique<core::OnsitePrimalDual>(
                instance, core::OnsitePrimalDualConfig{.enforce_capacity = false});
        case Algorithm::kOnsiteGreedy:
            return std::make_unique<core::OnsiteGreedy>(instance);
        case Algorithm::kOffsitePrimalDual:
            return std::make_unique<core::OffsitePrimalDual>(instance);
        case Algorithm::kOffsiteGreedy:
            return std::make_unique<core::OffsiteGreedy>(instance);
        case Algorithm::kHybridPrimalDual:
            return std::make_unique<core::HybridPrimalDual>(instance);
    }
    throw std::invalid_argument("make_scheduler: unknown algorithm");
}

namespace {

/// Everything one replication contributes to the reduction. Stored per
/// replication index and folded into the RunningStats accumulators in
/// ascending index order, so the aggregate never depends on which thread
/// finished first.
struct ReplicationOutcome {
    struct PerAlgorithm {
        double revenue{0};
        double acceptance{0};
        double max_load_factor{0};
        double admitted{0};
        double availability{0};
    };
    std::vector<PerAlgorithm> algorithms;
    bool lp_ok{false};
    double lp_bound{0};
    bool ilp_ok{false};
    double ilp_value{0};
};

ReplicationOutcome run_replication(const InstanceFactory& factory,
                                   const ExperimentConfig& config, std::size_t k) {
    common::Rng rng = common::stream_rng(config.base_seed, k);
    const core::Instance instance = factory(rng);

    ReplicationOutcome rep;
    rep.algorithms.resize(config.algorithms.size());
    for (std::size_t ai = 0; ai < config.algorithms.size(); ++ai) {
        const auto scheduler = make_scheduler(config.algorithms[ai], instance);
        const core::ScheduleResult result = core::run_online(instance, *scheduler);
        const PlacementStats stats = placement_stats(instance, result.decisions);
        ReplicationOutcome::PerAlgorithm& out = rep.algorithms[ai];
        out.revenue = result.revenue;
        out.acceptance = core::acceptance_ratio(result, instance);
        out.max_load_factor = result.max_load_factor;
        out.admitted = static_cast<double>(result.admitted);
        out.availability = stats.mean_availability;
    }

    if (config.compute_offline) {
        const core::OfflineResult off =
            core::solve_offline(instance, config.offline_scheme, config.offline);
        rep.lp_ok = off.lp_optimal;
        rep.lp_bound = off.lp_bound;
        rep.ilp_ok = off.has_ilp;
        rep.ilp_value = off.ilp_value;
    }
    return rep;
}

}  // namespace

std::uint64_t metrics_checksum(const ExperimentOutcome& outcome) {
    common::Fnv1a digest;
    for (const AlgorithmOutcome& a : outcome.per_algorithm) {
        digest.mix(static_cast<std::uint64_t>(a.algorithm));
        digest.mix(a.revenue);
        digest.mix(a.acceptance);
        digest.mix(a.max_load_factor);
        digest.mix(a.admitted);
        digest.mix(a.availability);
    }
    digest.mix(outcome.offline_bound);
    digest.mix(outcome.offline_ilp);
    return digest.value();
}

ExperimentOutcome run_experiment(const InstanceFactory& factory,
                                 const ExperimentConfig& config) {
    VNFR_CHECK(!config.algorithms.empty(), "run_experiment: no algorithms configured");
    VNFR_CHECK(config.seeds >= 1, "run_experiment: seeds must be >= 1");

    // Fan the replications out; each writes only its own pre-sized slot.
    std::vector<ReplicationOutcome> reps(config.seeds);
    {
        common::ThreadPool pool(config.threads);
        pool.parallel_for_blocked(0, config.seeds, 1,
                                  [&](std::size_t lo, std::size_t hi) {
                                      for (std::size_t k = lo; k < hi; ++k) {
                                          reps[k] = run_replication(factory, config, k);
                                      }
                                  });
    }

    // Ordered reduction: ascending replication index, independent of the
    // schedule above — the other half of the determinism contract.
    ExperimentOutcome outcome;
    outcome.per_algorithm.reserve(config.algorithms.size());
    for (const Algorithm a : config.algorithms) {
        outcome.per_algorithm.push_back(AlgorithmOutcome{a, {}, {}, {}, {}, {}});
    }
    for (std::size_t k = 0; k < config.seeds; ++k) {
        const ReplicationOutcome& rep = reps[k];
        for (std::size_t ai = 0; ai < config.algorithms.size(); ++ai) {
            AlgorithmOutcome& agg = outcome.per_algorithm[ai];
            agg.revenue.add(rep.algorithms[ai].revenue);
            agg.acceptance.add(rep.algorithms[ai].acceptance);
            agg.max_load_factor.add(rep.algorithms[ai].max_load_factor);
            agg.admitted.add(rep.algorithms[ai].admitted);
            agg.availability.add(rep.algorithms[ai].availability);
        }
        if (rep.lp_ok) outcome.offline_bound.add(rep.lp_bound);
        if (rep.ilp_ok) outcome.offline_ilp.add(rep.ilp_value);
    }
    return outcome;
}

}  // namespace vnfr::sim
