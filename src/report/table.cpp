#include "report/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace vnfr::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table::add_row: cell count mismatch");
    rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
            if (c + 1 < cells.size()) os << "  ";
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w;
    os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string Table::to_markdown() const {
    std::ostringstream os;
    const auto emit = [&](const std::vector<std::string>& cells) {
        os << "| ";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            os << (c + 1 < cells.size() ? " | " : " |");
        }
        os << '\n';
    };
    emit(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
    os << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::string format_double(double value, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string format_mean_ci(double mean, double ci_halfwidth, int precision) {
    return format_double(mean, precision) + " +/- " + format_double(ci_halfwidth, precision);
}

}  // namespace vnfr::report
