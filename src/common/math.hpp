// Numeric helpers for reliability arithmetic.
//
// Reliabilities in this system sit very close to 1 (e.g. 0.9999), so naive
// products like (1 - r_f * r_c)^k underflow or lose precision. Everything
// here works in log space via log1p/expm1.
#pragma once

#include <span>

namespace vnfr::common {

/// Relative-tolerance floating point comparison with an absolute floor for
/// values near zero.
bool almost_equal(double a, double b, double rel_tol = 1e-9, double abs_tol = 1e-12);

/// log(1 - x) for x in [0, 1). Throws std::domain_error for x outside [0, 1).
double log1m(double x);

/// 1 - exp(s) for s <= 0, i.e. maps a log-survival value back to a failure
/// probability complement without cancellation.
double one_minus_exp(double s);

/// Probability that at least one of `k` independent components with success
/// probability `p` each survives: 1 - (1-p)^k, computed stably.
double at_least_one(double p, int k);

/// Probability that at least one pairing survives given per-option success
/// probabilities: 1 - prod(1 - p_i), computed stably in log space.
double at_least_one_of(std::span<const double> probabilities);

/// Validate that `p` is a probability strictly inside (0, 1); returns p or
/// throws std::invalid_argument with `name` in the message.
double require_open_unit(double p, const char* name);

}  // namespace vnfr::common
