// Per-(cloudlet, time-slot) computing-resource accounting.
//
// Constraint (4)/(9) of the paper: in every slot the sum of demands placed
// on a cloudlet must not exceed cap_j. Algorithm 2 and all baselines
// enforce this at admission time; the *pure* Algorithm 1 is allowed bounded
// violations (Lemma 8), so the ledger supports a recording mode that admits
// overshoot and keeps track of its peak for comparison against the bound.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace vnfr::edge {

/// Whether reservations beyond capacity are rejected or recorded.
enum class CapacityPolicy {
    kEnforce, ///< reserve() fails when any slot would exceed capacity
    kRecord,  ///< reserve() always succeeds; overshoot is tracked
};

class ResourceLedger {
  public:
    /// `capacities[j]` is cap_j; `horizon` is T (number of slots).
    ResourceLedger(std::vector<double> capacities, TimeSlot horizon,
                   CapacityPolicy policy = CapacityPolicy::kEnforce);

    [[nodiscard]] std::size_t cloudlet_count() const { return capacities_.size(); }
    [[nodiscard]] TimeSlot horizon() const { return horizon_; }
    [[nodiscard]] CapacityPolicy policy() const { return policy_; }

    /// True when `amount` more units fit in every slot of [begin, end).
    [[nodiscard]] bool fits(CloudletId c, TimeSlot begin, TimeSlot end, double amount) const;

    /// Reserve `amount` units in every slot of [begin, end). Under kEnforce
    /// returns false (and changes nothing) when it does not fit; under
    /// kRecord always succeeds. Throws std::invalid_argument on bad ranges,
    /// unknown cloudlets or negative amounts.
    bool reserve(CloudletId c, TimeSlot begin, TimeSlot end, double amount);

    /// Release a prior reservation. Throws std::logic_error if the release
    /// would drive usage negative (releasing more than was reserved).
    void release(CloudletId c, TimeSlot begin, TimeSlot end, double amount);

    [[nodiscard]] double usage(CloudletId c, TimeSlot t) const;
    [[nodiscard]] double residual(CloudletId c, TimeSlot t) const;
    [[nodiscard]] double capacity(CloudletId c) const;

    /// Largest usage-over-capacity across all slots for cloudlet c (>= 0).
    [[nodiscard]] double peak_overshoot(CloudletId c) const;

    /// Largest overshoot across all cloudlets.
    [[nodiscard]] double max_overshoot() const;

    /// usage / capacity averaged over slots [0, horizon) for cloudlet c.
    [[nodiscard]] double mean_utilization(CloudletId c) const;

    /// The raw row-major [cloudlet][slot] usage table — the ledger half of
    /// a scheduler state export.
    [[nodiscard]] const std::vector<double>& usage_table() const { return usage_; }

    /// Replace the usage table wholesale (state import). Validates the
    /// size and that every cell is finite and non-negative; under kEnforce
    /// additionally that no cell exceeds its cloudlet's capacity (with the
    /// same epsilon fits() uses). Throws std::invalid_argument, leaving
    /// the ledger untouched, on any violation.
    void restore_usage(std::vector<double> usage);

  private:
    void check_range(CloudletId c, TimeSlot begin, TimeSlot end, double amount) const;
    [[nodiscard]] double& cell(CloudletId c, TimeSlot t);
    [[nodiscard]] const double& cell(CloudletId c, TimeSlot t) const;

    std::vector<double> capacities_;
    TimeSlot horizon_;
    CapacityPolicy policy_;
    std::vector<double> usage_;  ///< row-major [cloudlet][slot]
};

}  // namespace vnfr::edge
