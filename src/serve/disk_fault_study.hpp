// Disk-fault chaos harness over the Vfs layer: run a request trace once
// on a fault-free FaultyVfs (the baseline, which also counts the run's
// mutating storage operations), then attack replicas of that run three
// ways and gate that admission state survives bit-identically:
//
//   power-cut trials    cut power at a scripted mutating-op index — the
//                       un-fsync'ed page cache drops, the live WAL may
//                       keep a torn prefix of its un-synced suffix, and
//                       every open fd goes stale. Revive a controller on
//                       the survived bytes, resubmit the uncovered
//                       suffix, finish the trace: digest, revenue,
//                       metrics, and admitted set must equal the
//                       baseline bit-for-bit with no double-admits.
//                       Exhaustive mode cuts at EVERY mutating op of the
//                       baseline run — including both checkpoint-rotation
//                       stages and mid-group-commit writes.
//   transient trials    seeded bursts of EIO write/sync failures and
//                       short writes; the retry layer must absorb every
//                       one (controller never degrades) and the final
//                       state must equal the baseline.
//   degraded trials     persistent ENOSPC from a scripted write index
//                       on; the controller must enter read-only degraded
//                       mode (refusing new admissions with
//                       StorageDegradedError, never silently dropping),
//                       then — once the disk "frees space" — recover via
//                       an explicit try_recover_storage() call (even
//                       trials) or the degraded-probe path (odd trials),
//                       and finish the trace to the baseline state.
//
// Every trial ends with a read-only WAL scrub of the surviving
// directory; the baseline additionally proves the scrubber's teeth by
// flipping one durable bit and checking the scrub reports it.
//
// Fault schedules derive from counter-based RNG streams of the master
// seed — the whole study is replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/offline.hpp"
#include "serve/snapshot.hpp"

namespace vnfr::serve {

struct DiskFaultStudyConfig {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t master_seed{0};
    /// Number of sampled power-cut trials (ignored in exhaustive mode).
    std::size_t power_cut_points{12};
    /// Cut at EVERY mutating storage op of the baseline run instead of
    /// sampling — the full crash matrix, one trial per op index.
    bool exhaustive_power_cuts{false};
    std::size_t transient_trials{3};
    std::size_t degraded_trials{2};
    /// Controller snapshot cadence (WAL records between checkpoints);
    /// kept small so rotations land inside the cut window often.
    std::size_t checkpoint_every{8};
    std::size_t queue_capacity{8};
    /// WAL records per fdatasync in pump (group commit), so cuts land
    /// mid-group.
    std::size_t group_commit{4};
    /// Base retry budget per unit of injected burst length: a transient
    /// trial with burst length B runs with B * retry_max_attempts
    /// attempts, so the budget always dominates the fault bursts it is
    /// expected to absorb.
    std::size_t retry_max_attempts{6};
};

struct PowerCutTrial {
    std::uint64_t cut_at_op{0};  ///< 1-based mutating-op index of the cut
    bool cut_fired{false};
    std::size_t submitted_at_cut{0};
    /// Torn WAL tail the revived recovery observed and dropped.
    std::uint64_t recovered_torn_tail_bytes{0};
    bool digest_match{false};
    bool revenue_match{false};
    bool metrics_match{false};
    bool admitted_match{false};
    bool no_double_admits{false};
    bool capacity_ok{false};
    bool scrub_clean{false};

    [[nodiscard]] bool ok() const {
        return cut_fired && digest_match && revenue_match && metrics_match &&
               admitted_match && no_double_admits && capacity_ok && scrub_clean;
    }
};

struct TransientFaultTrial {
    /// Faults the FaultyVfs actually injected (write errors + sync
    /// errors + short writes) — proof of exposure.
    std::uint64_t faults_injected{0};
    /// Retries the storage layer absorbed (WalWriter + snapshot paths).
    std::uint64_t retries_absorbed{0};
    bool stayed_healthy{false};  ///< never entered degraded mode
    bool digest_match{false};
    bool revenue_match{false};
    bool metrics_match{false};
    bool admitted_match{false};
    bool capacity_ok{false};
    bool scrub_clean{false};

    [[nodiscard]] bool ok() const {
        return stayed_healthy && digest_match && revenue_match &&
               metrics_match && admitted_match && capacity_ok && scrub_clean;
    }
};

struct DegradedModeTrial {
    std::uint64_t fail_from_write{0};  ///< writes before persistent ENOSPC
    bool entered_degraded{false};
    /// Admissions refused with StorageDegradedError while degraded —
    /// shed loudly, never silently dropped or half-logged.
    std::uint64_t degraded_refusals{0};
    bool recovered{false};
    bool recovered_via_probe{false};  ///< auto-probe path vs explicit call
    bool digest_match{false};
    bool revenue_match{false};
    bool metrics_match{false};
    bool admitted_match{false};
    bool no_double_admits{false};
    bool capacity_ok{false};
    bool scrub_clean{false};

    [[nodiscard]] bool ok() const {
        return entered_degraded && degraded_refusals > 0 && recovered &&
               digest_match && revenue_match && metrics_match &&
               admitted_match && no_double_admits && capacity_ok &&
               scrub_clean;
    }
};

struct DiskFaultStudyResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t baseline_digest{0};
    ServeMetrics baseline_metrics;
    std::uint64_t baseline_outcomes{0};
    /// Mutating storage ops in the baseline run — the power-cut domain.
    std::uint64_t baseline_mutating_ops{0};
    bool baseline_capacity_ok{false};
    bool baseline_scrub_clean{false};
    /// The scrubber detected a single flipped durable bit in a retained
    /// generation (and reported clean again once it was flipped back).
    bool corruption_detected{false};
    std::vector<PowerCutTrial> power_cut_trials;
    std::vector<TransientFaultTrial> transient_trials;
    std::vector<DegradedModeTrial> degraded_trials;
    std::size_t failed_power_cut_trials{0};
    std::size_t failed_transient_trials{0};
    std::size_t failed_degraded_trials{0};
    /// Aggregate fault exposure (all transient trials).
    std::uint64_t transient_faults_injected{0};
    std::uint64_t transient_retries_absorbed{0};

    [[nodiscard]] bool ok() const {
        return baseline_capacity_ok && baseline_scrub_clean &&
               corruption_detected && failed_power_cut_trials == 0 &&
               failed_transient_trials == 0 && failed_degraded_trials == 0 &&
               (transient_trials.empty() || transient_faults_injected > 0);
    }
};

/// Runs the study over `instance.requests` as the stream. All storage
/// lives in per-trial FaultyVfs instances — nothing touches the real
/// disk. Throws std::invalid_argument for an empty trace.
DiskFaultStudyResult run_disk_fault_study(const core::Instance& instance,
                                          const DiskFaultStudyConfig& config);

}  // namespace vnfr::serve
