// Failover chaos harness: run a request trace once on a plain controller
// (the baseline), then repeatedly run a primary + shipped standby pair,
// kill the primary at randomized points — mid-group-commit, mid-ship,
// mid-checkpoint-rotation, during standby lag, optionally with a torn WAL
// tail and a faulty replication link — promote the standby from the
// primary's on-disk tail, finish the trace on the promoted controller,
// and gate that the result is indistinguishable from the uninterrupted
// run: bit-identical state digest, identical revenue bits, the same
// admitted set with no double-admits, and zero capacity violations under
// independent verification.
//
// Kill points, fault schedules, and the driving pattern derive from
// counter-based RNG streams of the master seed — bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/offline.hpp"
#include "serve/replication/ship_transport.hpp"
#include "serve/snapshot.hpp"

namespace vnfr::serve::replication {

struct FailoverChaosConfig {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t master_seed{0};
    /// Number of randomized kill-and-promote trials. Every 5th and every
    /// (5n+4)-th trial kills inside checkpoint rotation (stages 1 and 2)
    /// instead of after a WAL append; odd trials run a faulty link.
    std::size_t kill_points{25};
    /// Controller snapshot cadence (WAL records between checkpoints).
    std::size_t checkpoint_every{16};
    /// Admission queue bound; the drive pattern overflows it on purpose
    /// so shedding is exercised across failovers.
    std::size_t queue_capacity{8};
    /// WAL records per fdatasync in pump (group commit).
    std::size_t group_commit{4};
    /// Replication beat cadence: the shipper pumps and the standby polls
    /// once every `ship_every` drive steps. 1 is a hot standby; larger
    /// values open a lag window the promotion must close from disk.
    std::size_t ship_every{1};
    /// Bounded channel capacity in frames (backpressure realism).
    std::size_t transport_capacity{4};
    /// Mangle the data direction on odd trials (drop / truncate /
    /// duplicate / reorder, ~8% each) to exercise resync.
    bool transport_faults{true};
    /// Additionally truncate the primary's newest WAL by a few bytes on
    /// every other crashed trial, simulating a torn final append.
    bool torn_tails{true};
    /// Extra trials in which the primary does not die but DEGRADES: its
    /// storage (a FaultyVfs) starts returning persistent ENOSPC on
    /// writes, the controller enters read-only degraded mode, and the
    /// study treats it exactly like a dead primary — final ship of the
    /// durable tail, promotion of the standby from the primary's disk,
    /// and the trace finishing on the promoted controller under the same
    /// bit-identical gates. 0 disables (the default keeps older trial
    /// counts stable).
    std::size_t degraded_primary_trials{0};
    /// Scratch directory; the study creates and reuses subdirectories.
    std::string work_dir;
};

/// One kill-and-promote trial's outcome; `ok()` is the acceptance gate.
struct FailoverTrial {
    std::uint64_t kill_after_records{0};  ///< 0 for rotation-stage kills
    /// 0 = kill after a WAL append; 1/2 = kill inside checkpoint
    /// rotation (after the next generation exists / after the snapshot
    /// is durable).
    int checkpoint_crash_stage{0};
    bool faulty_transport{false};
    bool crashed{false};  ///< the injected kill actually fired
    /// The "kill" was a storage degradation, not a process death: the
    /// primary survived in read-only mode and was failed over from.
    bool degraded{false};
    bool torn_tail_applied{false};
    std::uint64_t truncated_bytes{0};
    std::size_t submitted_at_crash{0};
    /// Records the standby had applied when the primary died — the
    /// replication watermark's distance behind the crash point is the
    /// lag the disk tail replay had to close.
    std::uint64_t standby_applied_at_kill{0};
    std::uint64_t disk_records_applied{0};  ///< promotion catch-up from disk
    std::uint64_t disk_records_skipped{0};  ///< already shipped (covered set)
    std::uint64_t promote_torn_tail_bytes{0};
    bool digest_match{false};
    bool revenue_match{false};
    bool metrics_match{false};
    bool admitted_match{false};
    bool no_double_admits{false};
    bool capacity_ok{false};

    [[nodiscard]] bool ok() const {
        return crashed && digest_match && revenue_match && metrics_match &&
               admitted_match && no_double_admits && capacity_ok;
    }
};

struct FailoverChaosResult {
    core::Scheme scheme{core::Scheme::kOnsite};
    std::uint64_t baseline_digest{0};
    ServeMetrics baseline_metrics;
    std::uint64_t baseline_outcomes{0};
    bool baseline_capacity_ok{false};
    /// The no-kill control: a fully shipped standby promotes to the
    /// baseline digest with ZERO records recovered from disk — shipping
    /// alone replicates the full state.
    bool sync_promote_ok{false};
    /// In the control run the shipper's ack processing released at least
    /// one rotated-out generation (retention is bounded, not hoarding).
    bool sync_release_ok{false};
    std::vector<FailoverTrial> trials;
    std::size_t failed_trials{0};
    /// Link-level fault exposure across all trials, so a passing study
    /// can prove the adversarial paths actually ran.
    TransportStats transport_totals;
    std::uint64_t total_resync_rewinds{0};
    std::uint64_t total_disk_records_applied{0};

    [[nodiscard]] bool ok() const {
        return baseline_capacity_ok && sync_promote_ok && sync_release_ok &&
               failed_trials == 0;
    }
};

/// Runs the study over `instance.requests` as the stream. Throws
/// std::invalid_argument for an empty trace or missing work_dir.
FailoverChaosResult run_failover_chaos_study(const core::Instance& instance,
                                             const FailoverChaosConfig& config);

}  // namespace vnfr::serve::replication
