#include "opt/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/simplex.hpp"

namespace vnfr::opt {
namespace {

TEST(Presolve, NoReductionsOnCleanProgram) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 5.0);
    const std::size_t y = lp.add_variable(2.0, 5.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 4.0);
    const PresolveResult pre = presolve(lp);
    EXPECT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.removed_rows, 0u);
    EXPECT_EQ(pre.removed_variables, 0u);
    EXPECT_EQ(pre.reduced.variable_count(), 2u);
    EXPECT_EQ(pre.reduced.row_count(), 1u);
}

TEST(Presolve, SubstitutesFixedVariables) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(3.0, 5.0);
    const std::size_t y = lp.add_variable(1.0, 5.0);
    lp.set_bounds(x, 2.0, 2.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 6.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.removed_variables, 1u);
    EXPECT_DOUBLE_EQ(pre.objective_offset, 6.0);  // 3 * 2
    ASSERT_EQ(pre.reduced.variable_count(), 1u);
    // The row became y <= 4 (a singleton) and was folded into y's bound.
    EXPECT_EQ(pre.reduced.row_count(), 0u);
    EXPECT_DOUBLE_EQ(pre.reduced.upper_bound(0), 4.0);
}

TEST(Presolve, DropsEmptyRows) {
    LinearProgram lp;
    lp.add_variable(1.0, 1.0);
    lp.add_row({}, Relation::kLe, 3.0);   // trivially true
    lp.add_row({}, Relation::kGe, -1.0);  // trivially true
    const PresolveResult pre = presolve(lp);
    EXPECT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.removed_rows, 2u);
    EXPECT_EQ(pre.reduced.row_count(), 0u);
}

TEST(Presolve, DetectsEmptyRowInfeasibility) {
    LinearProgram lp;
    lp.add_variable(1.0, 1.0);
    lp.add_row({}, Relation::kGe, 2.0);
    EXPECT_TRUE(presolve(lp).infeasible);
}

TEST(Presolve, SingletonRowTightensUpperBound) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0);
    lp.add_row({{x, 2.0}}, Relation::kLe, 6.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.reduced.row_count(), 0u);
    EXPECT_DOUBLE_EQ(pre.reduced.upper_bound(0), 3.0);
}

TEST(Presolve, SingletonRowRaisesLowerBound) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(-1.0, 10.0);
    lp.add_row({{x, 1.0}}, Relation::kGe, 4.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_DOUBLE_EQ(pre.reduced.lower_bound(0), 4.0);
}

TEST(Presolve, SingletonEqualityFixesVariable) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(5.0, 10.0);
    const std::size_t y = lp.add_variable(1.0, 10.0);
    lp.add_row({{x, 2.0}}, Relation::kEq, 6.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kLe, 8.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.removed_variables, 1u);
    EXPECT_DOUBLE_EQ(pre.objective_offset, 15.0);  // 5 * 3
    // y <= 5 folded from the second row.
    EXPECT_DOUBLE_EQ(pre.reduced.upper_bound(0), 5.0);
}

TEST(Presolve, DetectsContradictorySingletons) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 2.0);
    lp.add_row({{x, 1.0}}, Relation::kGe, 5.0);  // x >= 5 but x <= 2
    EXPECT_TRUE(presolve(lp).infeasible);
}

TEST(Presolve, CascadesFixings) {
    // x = 3 (equality singleton) -> row 2 becomes y = 1 -> all folded.
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 10.0);
    const std::size_t y = lp.add_variable(1.0, 10.0);
    lp.add_row({{x, 1.0}}, Relation::kEq, 3.0);
    lp.add_row({{x, 1.0}, {y, 1.0}}, Relation::kEq, 4.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_FALSE(pre.infeasible);
    EXPECT_EQ(pre.removed_variables, 2u);
    EXPECT_EQ(pre.reduced.variable_count(), 0u);
    EXPECT_DOUBLE_EQ(pre.objective_offset, 4.0);
}

TEST(Presolve, RestoreLiftsSolutions) {
    LinearProgram lp;
    const std::size_t x = lp.add_variable(1.0, 10.0);
    const std::size_t y = lp.add_variable(2.0, 10.0);
    const std::size_t z = lp.add_variable(3.0, 10.0);
    lp.set_bounds(y, 7.0, 7.0);
    lp.add_row({{x, 1.0}, {z, 1.0}}, Relation::kLe, 5.0);
    const PresolveResult pre = presolve(lp);
    ASSERT_EQ(pre.reduced.variable_count(), 2u);
    const std::vector<double> reduced_x{1.0, 4.0};
    const std::vector<double> full = pre.restore(reduced_x);
    ASSERT_EQ(full.size(), 3u);
    EXPECT_DOUBLE_EQ(full[x], 1.0);
    EXPECT_DOUBLE_EQ(full[y], 7.0);
    EXPECT_DOUBLE_EQ(full[z], 4.0);
    EXPECT_THROW(pre.restore({1.0}), std::invalid_argument);
}

// Property: presolve preserves the optimum on random programs with mixed
// fixed variables, singletons and empty rows.
class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, OptimumPreserved) {
    common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 10007 + 3);
    LinearProgram lp;
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 10));
    for (std::size_t j = 0; j < n; ++j) {
        const double ub = rng.uniform(1.0, 6.0);
        lp.add_variable(rng.uniform(-1.0, 4.0), ub);
        if (rng.bernoulli(0.25)) {
            const double v = rng.uniform(0.0, ub);
            lp.set_bounds(j, v, v);  // fixed variable
        }
    }
    const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t k = 0; k < m; ++k) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t j = 0; j < n; ++j) {
            if (rng.bernoulli(0.4)) terms.emplace_back(j, rng.uniform(0.2, 2.0));
        }
        lp.add_row(std::move(terms), Relation::kLe,
                   rng.uniform(0.5, 3.0 * static_cast<double>(n)));
    }

    const LpSolution direct = solve_lp(lp);
    const PresolveResult pre = presolve(lp);
    if (pre.infeasible) {
        EXPECT_EQ(direct.status, SolveStatus::kInfeasible);
        return;
    }
    const LpSolution reduced = solve_lp(pre.reduced);
    ASSERT_EQ(direct.status, reduced.status);
    if (direct.status != SolveStatus::kOptimal) return;
    EXPECT_NEAR(direct.objective, reduced.objective + pre.objective_offset,
                1e-6 * (1.0 + std::fabs(direct.objective)));
    // The restored solution must be feasible for the original program.
    const std::vector<double> restored = pre.restore(reduced.x);
    EXPECT_LE(lp.max_violation(restored), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalence, ::testing::Range(0, 25));

}  // namespace
}  // namespace vnfr::opt
