// Fuzz-style hardening tests for workload::read_trace: malformed input of
// every kind must raise a descriptive std::runtime_error (or parse to
// valid requests) — never propagate NaN/garbage into the schedulers and
// never crash.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "workload/trace_io.hpp"

namespace vnfr::workload {
namespace {

constexpr const char* kHeader = "id,vnf,requirement,arrival,duration,payment,source\n";

std::vector<Request> parse(const std::string& rows) {
    std::stringstream buffer(kHeader + rows);
    return read_trace(buffer);
}

void expect_rejected(const std::string& row, const char* why) {
    std::stringstream buffer(kHeader + row);
    try {
        read_trace(buffer);
        FAIL() << "accepted " << why << ": " << row;
    } catch (const std::runtime_error& e) {
        // Descriptive: the error names the offending line.
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << why << ": " << e.what();
    }
}

TEST(TraceFuzz, AcceptsWellFormedRow) {
    const auto requests = parse("1,0,0.9,3,4,5.5,-1\n");
    ASSERT_EQ(requests.size(), 1u);
    EXPECT_EQ(requests[0].arrival, 3);
    EXPECT_EQ(requests[0].duration, 4);
    EXPECT_DOUBLE_EQ(requests[0].payment, 5.5);
}

TEST(TraceFuzz, RejectsTruncatedRows) {
    expect_rejected("1\n", "one field");
    expect_rejected("1,0\n", "two fields");
    expect_rejected("1,0,0.9,3,4,5.5\n", "six fields");
    expect_rejected("1,0,0.9,3,4,5.5,-1,extra\n", "eight fields");
    expect_rejected(",,,,,,\n", "all-empty fields");
}

TEST(TraceFuzz, RejectsNonFinitePayments) {
    // std::stod parses all of these happily; the reader must not.
    expect_rejected("1,0,0.9,3,4,nan,-1\n", "NaN payment");
    expect_rejected("1,0,0.9,3,4,-nan,-1\n", "negative NaN payment");
    expect_rejected("1,0,0.9,3,4,inf,-1\n", "infinite payment");
    expect_rejected("1,0,0.9,3,4,-inf,-1\n", "negative infinite payment");
    expect_rejected("1,0,nan,3,4,5.5,-1\n", "NaN requirement");
    expect_rejected("1,0,inf,3,4,5.5,-1\n", "infinite requirement");
}

TEST(TraceFuzz, RejectsNegativeAndZeroPayments) {
    expect_rejected("1,0,0.9,3,4,-5,-1\n", "negative payment");
    expect_rejected("1,0,0.9,3,4,0,-1\n", "zero payment");
}

TEST(TraceFuzz, RejectsOutOfRangeSlots) {
    expect_rejected("1,0,0.9,-3,4,5.5,-1\n", "negative arrival");
    expect_rejected("1,0,0.9,3,-4,5.5,-1\n", "negative duration");
    expect_rejected("1,0,0.9,3,0,5.5,-1\n", "zero duration");
    // Values past the 32-bit TimeSlot range must not silently truncate.
    expect_rejected("1,0,0.9,4294967296,4,5.5,-1\n", "arrival > int32 range");
    expect_rejected("1,0,0.9,3,2200000000,5.5,-1\n", "duration > int32 range");
    // Both in range individually, but the window end overflows.
    expect_rejected("1,0,0.9,2147483646,2147483646,5.5,-1\n",
                    "arrival + duration overflow");
}

TEST(TraceFuzz, RejectsRequirementOutsideOpenUnitInterval) {
    expect_rejected("1,0,0,3,4,5.5,-1\n", "zero requirement");
    expect_rejected("1,0,1,3,4,5.5,-1\n", "requirement of exactly one");
    expect_rejected("1,0,-0.5,3,4,5.5,-1\n", "negative requirement");
    expect_rejected("1,0,1.5,3,4,5.5,-1\n", "requirement above one");
}

TEST(TraceFuzz, RejectsGarbageTokens) {
    expect_rejected("x,0,0.9,3,4,5.5,-1\n", "non-numeric id");
    expect_rejected("1,0,0.9,3.5,4,5.5,-1\n", "fractional arrival");
    expect_rejected("1,0,0.9e,3,4,5.5,-1\n", "trailing characters");
    expect_rejected("1,0,0.9,3,4,5.5 ,-1\n", "trailing whitespace");
    expect_rejected("1,0,0x1p2,3,4,5.5,-1\n", "hex-float requirement");
}

TEST(TraceFuzz, ErrorsNameTheOffendingLine) {
    std::stringstream buffer(std::string(kHeader) +
                             "1,0,0.9,0,4,5.5,-1\n"
                             "2,0,0.9,1,4,nan,-1\n");
    try {
        read_trace(buffer);
        FAIL() << "NaN payment on line 3 was accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("payment"), std::string::npos) << e.what();
    }
}

TEST(TraceFuzz, RandomByteNoiseNeverCrashes) {
    // Deterministic byte-noise fuzzing: whatever comes back is either a
    // clean throw or a fully validated request list.
    common::Rng rng(0xf422);
    const std::string alphabet = "0123456789.,-+einfa \t";
    for (int iter = 0; iter < 500; ++iter) {
        std::string rows;
        const int lines = static_cast<int>(rng.uniform_int(1, 4));
        for (int l = 0; l < lines; ++l) {
            const int len = static_cast<int>(rng.uniform_int(0, 40));
            for (int i = 0; i < len; ++i) {
                rows.push_back(alphabet[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(alphabet.size()) - 1))]);
            }
            rows.push_back('\n');
        }
        std::stringstream buffer(kHeader + rows);
        try {
            const auto requests = read_trace(buffer);
            for (const Request& r : requests) {
                EXPECT_TRUE(std::isfinite(r.payment));
                EXPECT_GT(r.payment, 0.0);
                EXPECT_GT(r.requirement, 0.0);
                EXPECT_LT(r.requirement, 1.0);
                EXPECT_GE(r.arrival, 0);
                EXPECT_GE(r.duration, 1);
            }
        } catch (const std::runtime_error&) {
            // Rejected with a descriptive error: exactly the contract.
        }
    }
}

}  // namespace
}  // namespace vnfr::workload
